//! Traceroute simulation: AS-path expansion into hops with RTT estimates.
//!
//! The paper issues hourly traceroutes from every RIPE Atlas probe to every
//! server IP seen in DNS answers (§3.2) to support cache-location inference.
//! The simulated equivalent expands the valley-free AS path into one hop per
//! AS border router, with cumulative RTTs derived from great-circle
//! propagation between AS locations plus a per-hop processing cost.

use crate::routing::Router;
use crate::topology::{AsId, Topology};
use std::net::Ipv4Addr;

/// Per-hop processing/queueing delay added on top of propagation, in ms.
const HOP_COST_MS: f64 = 0.5;

/// One traceroute hop.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// The AS this hop's router belongs to.
    pub asn: AsId,
    /// The responding router address (an address from the AS's first
    /// announced prefix, or 0.0.0.0 if the AS announces none).
    pub addr: Ipv4Addr,
    /// Round-trip time from the probe to this hop, milliseconds.
    pub rtt_ms: f64,
}

/// A completed traceroute measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Traceroute {
    /// Source AS of the probe.
    pub src: AsId,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Hops, in order; empty when the destination was unroutable.
    pub hops: Vec<Hop>,
    /// Whether the destination was reached.
    pub reached: bool,
}

/// Runs a simulated traceroute from `src` to `dst_ip`.
///
/// The destination AS is resolved from the topology RIB; each AS on the path
/// contributes one hop. Deterministic: no jitter is modelled (the analysis
/// uses traceroutes only for AS-level location, not latency statistics).
pub fn trace(topo: &Topology, router: &mut Router, src: AsId, dst_ip: Ipv4Addr) -> Traceroute {
    trace_to_coord(topo, router, src, dst_ip, None)
}

/// Like [`trace`], but the final hop terminates at `dst_coord` when given —
/// a large AS (Apple's 17/8 spans the globe) is one routing entity but many
/// physical sites, and cache-location inference needs the per-site RTT.
pub fn trace_to_coord(
    topo: &Topology,
    router: &mut Router,
    src: AsId,
    dst_ip: Ipv4Addr,
    dst_coord: Option<mcdn_geo::Coord>,
) -> Traceroute {
    trace_between(topo, router, src, dst_ip, None, dst_coord)
}

/// Like [`trace_to_coord`], additionally anchoring the *first* hop at the
/// probe's own coordinates — an AS spans a country, but a probe sits in one
/// city, and per-city RTT differences are exactly what cache-location
/// inference measures.
pub fn trace_between(
    topo: &Topology,
    router: &mut Router,
    src: AsId,
    dst_ip: Ipv4Addr,
    src_coord: Option<mcdn_geo::Coord>,
    dst_coord: Option<mcdn_geo::Coord>,
) -> Traceroute {
    let Some(dst_as) = topo.origin_of(dst_ip) else {
        return Traceroute { src, dst: dst_ip, hops: Vec::new(), reached: false };
    };
    let Some(path) = router.path(topo, src, dst_as) else {
        return Traceroute { src, dst: dst_ip, hops: Vec::new(), reached: false };
    };
    // Each hop's RTT is what the probe would measure: round-trip
    // propagation from the probe's location to that hop's location, plus a
    // processing cost per traversed AS. (Like real traceroutes, RTTs along
    // a path need not be monotonic — a path can swing geographically.)
    let start = src_coord.or_else(|| topo.as_info(src).map(|a| a.location));
    let mut hops = Vec::with_capacity(path.len());
    for (i, &asn) in path.iter().enumerate() {
        let last = i + 1 == path.len();
        let loc_here = if last && dst_coord.is_some() {
            dst_coord
        } else {
            topo.as_info(asn).map(|a| a.location)
        };
        let rtt = match (start, loc_here) {
            (Some(a), Some(b)) => 2.0 * a.propagation_ms(&b) + (i + 1) as f64 * HOP_COST_MS,
            _ => (i + 1) as f64 * HOP_COST_MS,
        };
        let addr = if last {
            dst_ip
        } else {
            topo.prefixes_of(asn).first().and_then(|p| p.nth(1)).unwrap_or(Ipv4Addr::UNSPECIFIED)
        };
        hops.push(Hop { asn, addr, rtt_ms: rtt });
    }
    Traceroute { src, dst: dst_ip, hops, reached: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::Ipv4Net;
    use crate::topology::{AsInfo, AsKind, Relationship};
    use mcdn_geo::Coord;

    fn topo() -> Topology {
        let mut t = Topology::new();
        t.add_as(AsInfo {
            id: AsId(1),
            name: "Eyeball".into(),
            kind: AsKind::Eyeball,
            location: Coord::new(50.1, 8.7), // Frankfurt
        });
        t.add_as(AsInfo {
            id: AsId(2),
            name: "Transit".into(),
            kind: AsKind::Transit,
            location: Coord::new(52.4, 4.9), // Amsterdam
        });
        t.add_as(AsInfo {
            id: AsId(3),
            name: "CDN".into(),
            kind: AsKind::Cdn,
            location: Coord::new(40.7, -74.0), // New York
        });
        t.add_link(AsId(1), AsId(2), Relationship::CustomerToProvider, 100e9);
        t.add_link(AsId(3), AsId(2), Relationship::CustomerToProvider, 100e9);
        t.announce(AsId(1), Ipv4Net::parse("198.51.100.0/24").unwrap());
        t.announce(AsId(2), Ipv4Net::parse("203.0.113.0/24").unwrap());
        t.announce(AsId(3), Ipv4Net::parse("192.0.2.0/24").unwrap());
        t
    }

    #[test]
    fn reaches_destination_with_monotone_rtt() {
        let t = topo();
        let mut r = Router::new();
        let dst: Ipv4Addr = "192.0.2.55".parse().unwrap();
        let tr = trace(&t, &mut r, AsId(1), dst);
        assert!(tr.reached);
        assert_eq!(tr.hops.len(), 3);
        assert_eq!(tr.hops.last().unwrap().addr, dst);
        assert_eq!(tr.hops.last().unwrap().asn, AsId(3));
        // The transatlantic destination is much farther than the first hop.
        assert!(tr.hops.last().unwrap().rtt_ms > tr.hops[0].rtt_ms + 20.0);
        // Transatlantic final hop should dominate: > 50 ms RTT.
        assert!(tr.hops.last().unwrap().rtt_ms > 50.0);
    }

    #[test]
    fn intermediate_hop_uses_as_prefix() {
        let t = topo();
        let mut r = Router::new();
        let tr = trace(&t, &mut r, AsId(1), "192.0.2.55".parse().unwrap());
        assert_eq!(tr.hops[1].asn, AsId(2));
        assert_eq!(tr.hops[1].addr, "203.0.113.1".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn unroutable_destination_fails_cleanly() {
        let t = topo();
        let mut r = Router::new();
        let tr = trace(&t, &mut r, AsId(1), "8.8.8.8".parse().unwrap());
        assert!(!tr.reached);
        assert!(tr.hops.is_empty());
    }

    #[test]
    fn destination_inside_own_as() {
        let t = topo();
        let mut r = Router::new();
        let tr = trace(&t, &mut r, AsId(1), "198.51.100.9".parse().unwrap());
        assert!(tr.reached);
        assert_eq!(tr.hops.len(), 1);
        assert_eq!(tr.hops[0].asn, AsId(1));
    }
}
