//! IPv4 prefixes and longest-prefix-match lookup.

use core::fmt;
use std::net::Ipv4Addr;

/// An IPv4 network prefix in CIDR notation, e.g. `17.0.0.0/8` (Apple's
/// address block, which the paper scans to discover delivery sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Net {
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Ipv4Net {
    /// Creates a prefix, normalizing host bits to zero. `prefix_len` is
    /// clamped to 32.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Ipv4Net {
        let prefix_len = prefix_len.min(32);
        let bits = u32::from(addr) & Self::mask(prefix_len);
        Ipv4Net { addr: Ipv4Addr::from(bits), prefix_len }
    }

    /// Parses CIDR notation like `17.253.0.0/16`.
    pub fn parse(s: &str) -> Option<Ipv4Net> {
        let (addr, len) = s.split_once('/')?;
        let addr: Ipv4Addr = addr.parse().ok()?;
        let len: u8 = len.parse().ok()?;
        if len > 32 {
            return None;
        }
        Some(Ipv4Net::new(addr, len))
    }

    fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len as u32)
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Whether `ip` lies inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask(self.prefix_len) == u32::from(self.addr)
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    pub fn covers(&self, other: &Ipv4Net) -> bool {
        other.prefix_len >= self.prefix_len && self.contains(other.addr)
    }

    /// Number of addresses in the prefix (2^(32-len), saturating for /0).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len as u32)
    }

    /// The `index`-th address inside the prefix, if in range.
    pub fn nth(&self, index: u64) -> Option<Ipv4Addr> {
        if index >= self.size() {
            return None;
        }
        Some(Ipv4Addr::from(u32::from(self.addr) + index as u32))
    }

    /// Iterates all addresses in the prefix (careful with short prefixes).
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.size()).map(move |i| self.nth(i).expect("index in range"))
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

/// A binary trie keyed by IPv4 prefixes with longest-prefix-match lookup —
/// the data structure behind the simulated BGP RIB (the real ISP tracked
/// ~60 M routes; ours holds the scenario's few hundred but with the same
/// semantics).
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<TrieNode<T>>,
}

#[derive(Debug, Clone)]
struct TrieNode<T> {
    children: [Option<u32>; 2],
    value: Option<T>,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie { nodes: vec![TrieNode { children: [None, None], value: None }] }
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    fn bit(addr: u32, depth: u8) -> usize {
        ((addr >> (31 - depth as u32)) & 1) as usize
    }

    /// Inserts `value` at `prefix`, replacing and returning any previous
    /// value for the exact same prefix.
    pub fn insert(&mut self, prefix: Ipv4Net, value: T) -> Option<T> {
        let addr = u32::from(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.prefix_len() {
            let b = Self::bit(addr, depth);
            node = match self.nodes[node].children[b] {
                Some(next) => next as usize,
                None => {
                    let next = self.nodes.len();
                    self.nodes.push(TrieNode { children: [None, None], value: None });
                    self.nodes[node].children[b] = Some(next as u32);
                    next
                }
            };
        }
        self.nodes[node].value.replace(value)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Ipv4Net) -> Option<&T> {
        let addr = u32::from(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.prefix_len() {
            node = self.nodes[node].children[Self::bit(addr, depth)]? as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Longest-prefix match: the most specific entry covering `ip`, with the
    /// matched prefix length.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(u8, &T)> {
        let addr = u32::from(ip);
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            match self.nodes[node].children[Self::bit(addr, depth)] {
                Some(next) => {
                    node = next as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Removes the exact entry at `prefix`, returning its value. The trie
    /// nodes stay allocated (harmless; the RIB holds a few hundred routes),
    /// but lookups immediately stop matching — this is the mechanism behind
    /// anycast/BGP route withdrawal in the chaos layer.
    pub fn remove(&mut self, prefix: &Ipv4Net) -> Option<T> {
        let addr = u32::from(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.prefix_len() {
            node = self.nodes[node].children[Self::bit(addr, depth)]? as usize;
        }
        self.nodes[node].value.take()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.value.is_some()).count()
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        Ipv4Net::parse(s).unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(net("17.0.0.0/8").to_string(), "17.0.0.0/8");
        assert!(Ipv4Net::parse("17.0.0.0/33").is_none());
        assert!(Ipv4Net::parse("17.0.0.0").is_none());
        assert!(Ipv4Net::parse("x/8").is_none());
    }

    #[test]
    fn host_bits_normalized() {
        assert_eq!(net("17.253.37.99/16"), net("17.253.0.0/16"));
    }

    #[test]
    fn containment() {
        let apple8 = net("17.0.0.0/8");
        assert!(apple8.contains(ip("17.253.37.16")));
        assert!(!apple8.contains(ip("23.0.0.1")));
        assert!(apple8.covers(&net("17.253.0.0/16")));
        assert!(!net("17.253.0.0/16").covers(&apple8));
        assert!(apple8.covers(&apple8));
    }

    #[test]
    fn nth_and_size() {
        let n = net("192.0.2.0/30");
        assert_eq!(n.size(), 4);
        assert_eq!(n.nth(0), Some(ip("192.0.2.0")));
        assert_eq!(n.nth(3), Some(ip("192.0.2.3")));
        assert_eq!(n.nth(4), None);
        assert_eq!(n.iter().count(), 4);
    }

    #[test]
    fn trie_longest_prefix_match() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("17.0.0.0/8"), "apple-agg");
        trie.insert(net("17.253.0.0/16"), "apple-cdn");
        trie.insert(net("0.0.0.0/0"), "default");
        assert_eq!(trie.lookup(ip("17.253.1.1")), Some((16, &"apple-cdn")));
        assert_eq!(trie.lookup(ip("17.1.1.1")), Some((8, &"apple-agg")));
        assert_eq!(trie.lookup(ip("8.8.8.8")), Some((0, &"default")));
        assert_eq!(trie.len(), 3);
    }

    #[test]
    fn trie_without_default_misses() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("10.0.0.0/8"), 1);
        assert_eq!(trie.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn trie_replace_returns_old() {
        let mut trie = PrefixTrie::new();
        assert_eq!(trie.insert(net("10.0.0.0/8"), 1), None);
        assert_eq!(trie.insert(net("10.0.0.0/8"), 2), Some(1));
        assert_eq!(trie.get(&net("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn trie_exact_get_distinguishes_lengths() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("10.0.0.0/8"), 8);
        trie.insert(net("10.0.0.0/16"), 16);
        assert_eq!(trie.get(&net("10.0.0.0/8")), Some(&8));
        assert_eq!(trie.get(&net("10.0.0.0/16")), Some(&16));
        assert_eq!(trie.get(&net("10.0.0.0/24")), None);
    }

    #[test]
    fn trie_remove_withdraws_only_the_exact_prefix() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("17.0.0.0/8"), "agg");
        trie.insert(net("17.253.0.0/16"), "cdn");
        assert_eq!(trie.remove(&net("17.253.0.0/16")), Some("cdn"));
        // The covering /8 still matches — withdrawal falls back, not black-holes.
        assert_eq!(trie.lookup(ip("17.253.1.1")), Some((8, &"agg")));
        assert_eq!(trie.len(), 1);
        // Removing an absent or already-removed prefix is a no-op.
        assert_eq!(trie.remove(&net("17.253.0.0/16")), None);
        assert_eq!(trie.remove(&net("99.0.0.0/8")), None);
        // Re-announce restores the specific route.
        trie.insert(net("17.253.0.0/16"), "cdn");
        assert_eq!(trie.lookup(ip("17.253.1.1")), Some((16, &"cdn")));
    }

    #[test]
    fn host_route_matches() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("192.0.2.7/32"), "host");
        assert_eq!(trie.lookup(ip("192.0.2.7")), Some((32, &"host")));
        assert_eq!(trie.lookup(ip("192.0.2.8")), None);
    }
}
