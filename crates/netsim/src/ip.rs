//! IPv4 prefixes and longest-prefix-match lookup.

use core::fmt;
use std::net::Ipv4Addr;

/// An IPv4 network prefix in CIDR notation, e.g. `17.0.0.0/8` (Apple's
/// address block, which the paper scans to discover delivery sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Net {
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Ipv4Net {
    /// Creates a prefix, normalizing host bits to zero. `prefix_len` is
    /// clamped to 32.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Ipv4Net {
        let prefix_len = prefix_len.min(32);
        let bits = u32::from(addr) & Self::mask(prefix_len);
        Ipv4Net { addr: Ipv4Addr::from(bits), prefix_len }
    }

    /// Parses CIDR notation like `17.253.0.0/16`.
    pub fn parse(s: &str) -> Option<Ipv4Net> {
        let (addr, len) = s.split_once('/')?;
        let addr: Ipv4Addr = addr.parse().ok()?;
        let len: u8 = len.parse().ok()?;
        if len > 32 {
            return None;
        }
        Some(Ipv4Net::new(addr, len))
    }

    fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len as u32)
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Whether `ip` lies inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask(self.prefix_len) == u32::from(self.addr)
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    pub fn covers(&self, other: &Ipv4Net) -> bool {
        other.prefix_len >= self.prefix_len && self.contains(other.addr)
    }

    /// Number of addresses in the prefix (2^(32-len), saturating for /0).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len as u32)
    }

    /// The `index`-th address inside the prefix, if in range.
    pub fn nth(&self, index: u64) -> Option<Ipv4Addr> {
        if index >= self.size() {
            return None;
        }
        Some(Ipv4Addr::from(u32::from(self.addr) + index as u32))
    }

    /// Iterates all addresses in the prefix (careful with short prefixes).
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.size()).map(move |i| self.nth(i).expect("index in range"))
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

/// A binary trie keyed by IPv4 prefixes with longest-prefix-match lookup —
/// the data structure behind the simulated BGP RIB (the real ISP tracked
/// ~60 M routes; ours holds the scenario's few hundred but with the same
/// semantics).
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<TrieNode<T>>,
}

#[derive(Debug, Clone)]
struct TrieNode<T> {
    children: [Option<u32>; 2],
    value: Option<T>,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie { nodes: vec![TrieNode { children: [None, None], value: None }] }
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty trie pre-sized for `prefixes` inserts. Each insert creates
    /// at most `prefix_len ≤ 32` nodes, so reserving `32 × prefixes` up
    /// front turns the node vector's one-at-a-time growth during a bulk
    /// build into a single allocation (callers [`shrink_to_fit`]
    /// (PrefixTrie::shrink_to_fit) afterwards — shared prefixes make the
    /// bound loose).
    pub fn with_capacity(prefixes: usize) -> Self {
        let mut trie = Self::default();
        trie.reserve(prefixes);
        trie
    }

    /// Reserves node capacity for `prefixes` further inserts (see
    /// [`PrefixTrie::with_capacity`]).
    pub fn reserve(&mut self, prefixes: usize) {
        self.nodes.reserve(prefixes.saturating_mul(32));
    }

    /// Releases the slack left by [`PrefixTrie::reserve`]'s worst-case
    /// bound once the build phase is over.
    pub fn shrink_to_fit(&mut self) {
        self.nodes.shrink_to_fit();
    }

    /// Number of allocated trie nodes (capacity diagnostics; exceeds
    /// [`PrefixTrie::len`] because interior nodes carry no value).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn bit(addr: u32, depth: u8) -> usize {
        ((addr >> (31 - depth as u32)) & 1) as usize
    }

    /// Inserts `value` at `prefix`, replacing and returning any previous
    /// value for the exact same prefix.
    pub fn insert(&mut self, prefix: Ipv4Net, value: T) -> Option<T> {
        let addr = u32::from(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.prefix_len() {
            let b = Self::bit(addr, depth);
            node = match self.nodes[node].children[b] {
                Some(next) => next as usize,
                None => {
                    let next = self.nodes.len();
                    self.nodes.push(TrieNode { children: [None, None], value: None });
                    self.nodes[node].children[b] = Some(next as u32);
                    next
                }
            };
        }
        self.nodes[node].value.replace(value)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Ipv4Net) -> Option<&T> {
        let addr = u32::from(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.prefix_len() {
            node = self.nodes[node].children[Self::bit(addr, depth)]? as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Longest-prefix match: the most specific entry covering `ip`, with the
    /// matched prefix length.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(u8, &T)> {
        let addr = u32::from(ip);
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            match self.nodes[node].children[Self::bit(addr, depth)] {
                Some(next) => {
                    node = next as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Removes the exact entry at `prefix`, returning its value. The trie
    /// nodes stay allocated (harmless; the RIB holds a few hundred routes),
    /// but lookups immediately stop matching — this is the mechanism behind
    /// anycast/BGP route withdrawal in the chaos layer.
    pub fn remove(&mut self, prefix: &Ipv4Net) -> Option<T> {
        let addr = u32::from(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.prefix_len() {
            node = self.nodes[node].children[Self::bit(addr, depth)]? as usize;
        }
        self.nodes[node].value.take()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.value.is_some()).count()
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every stored `(prefix, value)` pair, in ascending `(addr, len)`
    /// order. Withdrawn entries (value taken by [`PrefixTrie::remove`])
    /// do not appear.
    pub fn entries(&self) -> Vec<(Ipv4Net, &T)> {
        let mut out = Vec::with_capacity(self.len());
        self.collect_entries(0, 0, 0, &mut out);
        out.sort_by_key(|(net, _)| (u32::from(net.network()), net.prefix_len()));
        out
    }

    fn collect_entries<'a>(
        &'a self,
        node: usize,
        addr: u32,
        depth: u8,
        out: &mut Vec<(Ipv4Net, &'a T)>,
    ) {
        if let Some(v) = self.nodes[node].value.as_ref() {
            out.push((Ipv4Net::new(Ipv4Addr::from(addr), depth), v));
        }
        if depth == 32 {
            return;
        }
        for b in 0..2u32 {
            if let Some(next) = self.nodes[node].children[b as usize] {
                self.collect_entries(next as usize, addr | (b << (31 - depth)), depth + 1, out);
            }
        }
    }
}

impl<T: Copy> PrefixTrie<T> {
    /// Compiles the trie's current contents into a [`FlatLpm`] — the
    /// immutable binary-search form the hot lookup paths use. The trie
    /// stays the mutable build/withdraw structure; recompile after any
    /// insert or remove.
    pub fn compile(&self) -> FlatLpm<T> {
        FlatLpm::from_entries(self.entries().into_iter().map(|(net, v)| (net, *v)))
    }
}

/// A compiled longest-prefix-match table: for each present prefix length
/// (most specific first) a sorted array of `(masked address, value)`
/// pairs, looked up by masking the query address and binary-searching.
///
/// Compared to walking [`PrefixTrie`] bit by bit (32 dependent loads
/// through `Vec`-indexed nodes), a lookup here touches a handful of
/// contiguous arrays — the classic RIB "compile" step. The table is a
/// frozen snapshot: build it from the trie via [`PrefixTrie::compile`]
/// once per round/run, after all announcements and withdrawals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatLpm<T> {
    /// `(prefix_len, sorted [(masked_addr, value)])`, longest length first.
    tiers: Vec<(u8, Vec<(u32, T)>)>,
}

impl<T: Copy> FlatLpm<T> {
    /// Builds a table from `(prefix, value)` pairs. A duplicate prefix
    /// keeps the last value (matching repeated [`PrefixTrie::insert`]).
    pub fn from_entries(entries: impl IntoIterator<Item = (Ipv4Net, T)>) -> FlatLpm<T> {
        let mut tiers: Vec<(u8, Vec<(u32, T)>)> = Vec::new();
        for (net, value) in entries {
            let len = net.prefix_len();
            let masked = u32::from(net.network());
            let idx = match tiers.iter().position(|(l, _)| *l == len) {
                Some(i) => i,
                None => {
                    tiers.push((len, Vec::new()));
                    tiers.len() - 1
                }
            };
            let tier = &mut tiers[idx].1;
            match tier.binary_search_by_key(&masked, |(a, _)| *a) {
                Ok(i) => tier[i].1 = value,
                Err(i) => tier.insert(i, (masked, value)),
            }
        }
        tiers.sort_by(|(a, _), (b, _)| b.cmp(a));
        for (_, tier) in &mut tiers {
            tier.shrink_to_fit();
        }
        FlatLpm { tiers }
    }

    /// Longest-prefix match: the most specific entry covering `ip`, with
    /// the matched prefix length — identical answers to
    /// [`PrefixTrie::lookup`] on the trie this was compiled from.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(u8, T)> {
        let addr = u32::from(ip);
        for (len, tier) in &self.tiers {
            let masked = addr & Ipv4Net::mask(*len);
            if let Ok(i) = tier.binary_search_by_key(&masked, |(a, _)| *a) {
                return Some((*len, tier[i].1));
            }
        }
        None
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.tiers.iter().map(|(_, t)| t.len()).sum()
    }

    /// Whether the table holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        Ipv4Net::parse(s).unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(net("17.0.0.0/8").to_string(), "17.0.0.0/8");
        assert!(Ipv4Net::parse("17.0.0.0/33").is_none());
        assert!(Ipv4Net::parse("17.0.0.0").is_none());
        assert!(Ipv4Net::parse("x/8").is_none());
    }

    #[test]
    fn host_bits_normalized() {
        assert_eq!(net("17.253.37.99/16"), net("17.253.0.0/16"));
    }

    #[test]
    fn containment() {
        let apple8 = net("17.0.0.0/8");
        assert!(apple8.contains(ip("17.253.37.16")));
        assert!(!apple8.contains(ip("23.0.0.1")));
        assert!(apple8.covers(&net("17.253.0.0/16")));
        assert!(!net("17.253.0.0/16").covers(&apple8));
        assert!(apple8.covers(&apple8));
    }

    #[test]
    fn nth_and_size() {
        let n = net("192.0.2.0/30");
        assert_eq!(n.size(), 4);
        assert_eq!(n.nth(0), Some(ip("192.0.2.0")));
        assert_eq!(n.nth(3), Some(ip("192.0.2.3")));
        assert_eq!(n.nth(4), None);
        assert_eq!(n.iter().count(), 4);
    }

    #[test]
    fn trie_longest_prefix_match() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("17.0.0.0/8"), "apple-agg");
        trie.insert(net("17.253.0.0/16"), "apple-cdn");
        trie.insert(net("0.0.0.0/0"), "default");
        assert_eq!(trie.lookup(ip("17.253.1.1")), Some((16, &"apple-cdn")));
        assert_eq!(trie.lookup(ip("17.1.1.1")), Some((8, &"apple-agg")));
        assert_eq!(trie.lookup(ip("8.8.8.8")), Some((0, &"default")));
        assert_eq!(trie.len(), 3);
    }

    #[test]
    fn trie_without_default_misses() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("10.0.0.0/8"), 1);
        assert_eq!(trie.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn trie_replace_returns_old() {
        let mut trie = PrefixTrie::new();
        assert_eq!(trie.insert(net("10.0.0.0/8"), 1), None);
        assert_eq!(trie.insert(net("10.0.0.0/8"), 2), Some(1));
        assert_eq!(trie.get(&net("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn trie_exact_get_distinguishes_lengths() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("10.0.0.0/8"), 8);
        trie.insert(net("10.0.0.0/16"), 16);
        assert_eq!(trie.get(&net("10.0.0.0/8")), Some(&8));
        assert_eq!(trie.get(&net("10.0.0.0/16")), Some(&16));
        assert_eq!(trie.get(&net("10.0.0.0/24")), None);
    }

    #[test]
    fn trie_remove_withdraws_only_the_exact_prefix() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("17.0.0.0/8"), "agg");
        trie.insert(net("17.253.0.0/16"), "cdn");
        assert_eq!(trie.remove(&net("17.253.0.0/16")), Some("cdn"));
        // The covering /8 still matches — withdrawal falls back, not black-holes.
        assert_eq!(trie.lookup(ip("17.253.1.1")), Some((8, &"agg")));
        assert_eq!(trie.len(), 1);
        // Removing an absent or already-removed prefix is a no-op.
        assert_eq!(trie.remove(&net("17.253.0.0/16")), None);
        assert_eq!(trie.remove(&net("99.0.0.0/8")), None);
        // Re-announce restores the specific route.
        trie.insert(net("17.253.0.0/16"), "cdn");
        assert_eq!(trie.lookup(ip("17.253.1.1")), Some((16, &"cdn")));
    }

    #[test]
    fn host_route_matches() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("192.0.2.7/32"), "host");
        assert_eq!(trie.lookup(ip("192.0.2.7")), Some((32, &"host")));
        assert_eq!(trie.lookup(ip("192.0.2.8")), None);
    }

    #[test]
    fn with_capacity_presizes_and_shrink_releases() {
        let mut trie: PrefixTrie<u32> = PrefixTrie::with_capacity(10);
        let before = trie.node_count();
        for i in 0..10u32 {
            trie.insert(Ipv4Net::new(Ipv4Addr::from(i << 24), 8), i);
        }
        // All nodes fit in the reservation: one allocation up front.
        assert_eq!(before, 1);
        assert!(trie.node_count() <= 1 + 10 * 32);
        trie.shrink_to_fit();
        assert_eq!(trie.len(), 10);
        assert_eq!(trie.lookup(ip("3.1.2.3")), Some((8, &3)));
    }

    #[test]
    fn entries_lists_live_prefixes_sorted() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("17.0.0.0/8"), "agg");
        trie.insert(net("17.253.0.0/16"), "cdn");
        trie.insert(net("10.0.0.0/8"), "ten");
        trie.remove(&net("17.253.0.0/16"));
        let entries: Vec<_> = trie.entries().into_iter().map(|(n, v)| (n, *v)).collect();
        assert_eq!(entries, vec![(net("10.0.0.0/8"), "ten"), (net("17.0.0.0/8"), "agg")]);
    }

    #[test]
    fn flat_lpm_matches_trie_on_fixture() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("17.0.0.0/8"), 1u32);
        trie.insert(net("17.253.0.0/16"), 2);
        trie.insert(net("0.0.0.0/0"), 0);
        trie.insert(net("192.0.2.7/32"), 3);
        let flat = trie.compile();
        assert_eq!(flat.len(), trie.len());
        for probe in ["17.253.1.1", "17.1.1.1", "8.8.8.8", "192.0.2.7", "192.0.2.8"] {
            let addr = ip(probe);
            assert_eq!(
                flat.lookup(addr),
                trie.lookup(addr).map(|(l, v)| (l, *v)),
                "{probe}"
            );
        }
    }

    #[test]
    fn flat_lpm_reflects_withdrawals_at_compile_time() {
        let mut trie = PrefixTrie::new();
        trie.insert(net("17.0.0.0/8"), "agg");
        trie.insert(net("17.253.0.0/16"), "cdn");
        trie.remove(&net("17.253.0.0/16"));
        let flat = trie.compile();
        // Withdrawal falls back to the covering aggregate, as in the trie.
        assert_eq!(flat.lookup(ip("17.253.1.1")), Some((8, "agg")));
        assert_eq!(flat.len(), 1);
    }

    #[test]
    fn flat_lpm_duplicate_prefix_keeps_last() {
        let flat = FlatLpm::from_entries([(net("10.0.0.0/8"), 1), (net("10.0.0.0/8"), 2)]);
        assert_eq!(flat.lookup(ip("10.1.2.3")), Some((8, 2)));
        assert_eq!(flat.len(), 1);
    }
}

#[cfg(test)]
mod lpm_equivalence {
    use super::*;
    use proptest::prelude::*;

    /// A compact arbitrary route: (address bits, prefix length, value).
    fn arb_route() -> impl Strategy<Value = (u32, u8, u16)> {
        (any::<u32>(), 0u8..=32, any::<u16>())
    }

    proptest! {
        /// For ANY prefix set — including duplicates, nested prefixes,
        /// host routes, and a default route — and ANY subset of
        /// withdrawals, the compiled flat table answers every longest-
        /// prefix query exactly like the trie it was built from. Probe
        /// addresses cover each prefix's network address, its last
        /// address, just-outside neighbours, and unrelated addresses.
        #[test]
        fn compiled_table_equals_trie(
            routes in proptest::collection::vec(arb_route(), 0..24),
            withdraw_mask in any::<u32>(),
            extra_probes in proptest::collection::vec(any::<u32>(), 0..16),
        ) {
            let mut trie = PrefixTrie::with_capacity(routes.len());
            let nets: Vec<Ipv4Net> = routes
                .iter()
                .map(|&(addr, len, _)| Ipv4Net::new(Ipv4Addr::from(addr), len))
                .collect();
            for (net, &(_, _, value)) in nets.iter().zip(&routes) {
                trie.insert(*net, value);
            }
            // Withdraw an arbitrary subset post-build (chaos-layer moves).
            for (i, net) in nets.iter().enumerate() {
                if withdraw_mask & (1 << (i % 32)) != 0 {
                    trie.remove(net);
                }
            }
            let flat = trie.compile();
            prop_assert_eq!(flat.len(), trie.len());
            let mut probes: Vec<u32> = extra_probes;
            for net in &nets {
                let base = u32::from(net.network());
                let span = (net.size() - 1) as u32;
                probes.extend([
                    base,
                    base.wrapping_add(span),
                    base.wrapping_sub(1),
                    base.wrapping_add(span).wrapping_add(1),
                ]);
            }
            for addr in probes {
                let ip = Ipv4Addr::from(addr);
                prop_assert_eq!(flat.lookup(ip), trie.lookup(ip).map(|(l, v)| (l, *v)));
            }
        }
    }
}
