//! AS-level Internet model.
//!
//! The paper's ISP analysis (Section 5) hinges on three network-layer facts
//! about every traffic flow: which AS *originates* it (the "Source AS", found
//! via BGP), which neighbor AS *hands it over* to the measured ISP (the
//! "Handover AS", found via the ingress interface), and whether the peering
//! link it arrives on is saturated. This crate provides the substrate for
//! all three:
//!
//! * [`ip`] — IPv4 prefixes ([`Ipv4Net`]), a binary trie with
//!   longest-prefix matching ([`PrefixTrie`]) as the mutable BGP RIB, and
//!   its compiled binary-search form ([`FlatLpm`]) for hot lookup paths.
//! * [`topology`] — autonomous systems, business relationships
//!   (customer/provider/peer), and capacity-annotated inter-AS links.
//! * [`routing`] — valley-free (Gao–Rexford) path selection, giving each
//!   flow its AS-level forwarding path and therefore its handover AS.
//! * [`traceroute`] — hop-by-hop path expansion with RTT estimates, used by
//!   the measurement probes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bgp_wire;
pub mod ip;
pub mod routing;
pub mod topology;
pub mod traceroute;

pub use bgp_wire::{RibBuilder, Update as BgpUpdate};
pub use ip::{FlatLpm, Ipv4Net, PrefixTrie};
pub use routing::Router;
pub use topology::{AsId, AsInfo, AsKind, DirectedRel, Link, LinkId, Relationship, Topology};
pub use traceroute::{Hop, Traceroute};
