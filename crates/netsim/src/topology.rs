//! Autonomous systems, business relationships, and inter-AS links.

use crate::ip::{FlatLpm, Ipv4Net, PrefixTrie};
use mcdn_geo::Coord;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsId(pub u32);

impl core::fmt::Display for AsId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Coarse role of an AS in the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsKind {
    /// Access network with end users (the measured Eyeball ISP, probe hosts).
    Eyeball,
    /// Transit provider.
    Transit,
    /// CDN operator network.
    Cdn,
    /// Content provider network (e.g. Apple's own AS).
    Content,
    /// Public cloud (hosts the AWS-style vantage VMs).
    Cloud,
}

/// Static description of an AS.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// AS number.
    pub id: AsId,
    /// Operator name for display ("Akamai", "AS D", …).
    pub name: String,
    /// Role.
    pub kind: AsKind,
    /// Representative location (used for propagation-delay estimates).
    pub location: Coord,
}

/// Business relationship of a link, read in the direction `a` → `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// `a` is a customer of `b` (pays `b` for transit).
    CustomerToProvider,
    /// Settlement-free peering.
    PeerToPeer,
}

/// Identifier of an inter-AS link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// A physical interconnection between two ASes.
///
/// The paper's overflow analysis (Figure 8) observes a single handover AS
/// ("AS D") connected to the ISP via *four* distinct links, two of which
/// saturate — so links are first-class objects with their own capacity, and
/// an AS pair may be connected by several of them.
#[derive(Debug, Clone)]
pub struct Link {
    /// Link identifier.
    pub id: LinkId,
    /// One endpoint.
    pub a: AsId,
    /// Other endpoint.
    pub b: AsId,
    /// Relationship in `a` → `b` direction.
    pub rel: Relationship,
    /// Capacity in bits per second (per direction).
    pub capacity_bps: f64,
}

impl Link {
    /// The other endpoint, given one of them.
    pub fn other(&self, side: AsId) -> AsId {
        if side == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// Whether this link touches `asn`.
    pub fn touches(&self, asn: AsId) -> bool {
        self.a == asn || self.b == asn
    }
}

/// The AS-level topology: nodes, links, and originated prefixes.
#[derive(Debug, Default, Clone)]
pub struct Topology {
    ases: HashMap<AsId, AsInfo>,
    links: Vec<Link>,
    adjacency: HashMap<AsId, Vec<u32>>, // AsId -> indices into `links`
    rib: PrefixTrie<AsId>,              // prefix -> origin AS
    prefixes: HashMap<AsId, Vec<Ipv4Net>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Registers an AS. Panics on duplicate id (a scenario construction bug).
    pub fn add_as(&mut self, info: AsInfo) {
        let prev = self.ases.insert(info.id, info);
        assert!(prev.is_none(), "duplicate AS registered");
    }

    /// Adds a link and returns its id.
    pub fn add_link(&mut self, a: AsId, b: AsId, rel: Relationship, capacity_bps: f64) -> LinkId {
        assert!(self.ases.contains_key(&a) && self.ases.contains_key(&b), "unknown AS");
        let id = LinkId(self.links.len() as u32);
        let idx = self.links.len() as u32;
        self.links.push(Link { id, a, b, rel, capacity_bps });
        self.adjacency.entry(a).or_default().push(idx);
        self.adjacency.entry(b).or_default().push(idx);
        id
    }

    /// Pre-sizes the RIB's node storage for `prefix_count` upcoming
    /// [`Topology::announce`] calls, so a bulk build performs one trie
    /// allocation instead of growing node by node. Pair with
    /// [`Topology::compact_rib`] once announcements are done.
    pub fn reserve_routes(&mut self, prefix_count: usize) {
        self.rib.reserve(prefix_count);
    }

    /// Releases the slack left by [`Topology::reserve_routes`]'s
    /// worst-case bound after the build phase.
    pub fn compact_rib(&mut self) {
        self.rib.shrink_to_fit();
    }

    /// Compiles the current RIB into an immutable [`FlatLpm`] for
    /// binary-search longest-prefix lookups on hot paths (per-flow
    /// routing, per-address classification). The table is a snapshot:
    /// recompile after any announce/withdraw.
    pub fn compiled_rib(&self) -> FlatLpm<AsId> {
        self.rib.compile()
    }

    /// Announces `prefix` as originated by `origin` (installs it in the RIB).
    pub fn announce(&mut self, origin: AsId, prefix: Ipv4Net) {
        assert!(self.ases.contains_key(&origin), "unknown AS");
        self.rib.insert(prefix, origin);
        self.prefixes.entry(origin).or_default().push(prefix);
    }

    /// Withdraws `prefix` if it is currently originated by `origin`,
    /// returning whether a route was removed. Traffic to the prefix then
    /// falls back to any covering announcement (or becomes unroutable) —
    /// the BGP-withdrawal half of an anycast failure.
    pub fn withdraw(&mut self, origin: AsId, prefix: Ipv4Net) -> bool {
        if self.rib.get(&prefix) != Some(&origin) {
            return false;
        }
        self.rib.remove(&prefix);
        if let Some(v) = self.prefixes.get_mut(&origin) {
            v.retain(|p| *p != prefix);
        }
        true
    }

    /// The origin AS of `ip` per longest-prefix match, if any.
    pub fn origin_of(&self, ip: Ipv4Addr) -> Option<AsId> {
        self.rib.lookup(ip).map(|(_, asn)| *asn)
    }

    /// AS metadata.
    pub fn as_info(&self, id: AsId) -> Option<&AsInfo> {
        self.ases.get(&id)
    }

    /// All registered ASes.
    pub fn ases(&self) -> impl Iterator<Item = &AsInfo> {
        self.ases.values()
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Links incident to `asn`.
    pub fn links_of(&self, asn: AsId) -> impl Iterator<Item = &Link> {
        self.adjacency.get(&asn).into_iter().flatten().map(move |&i| &self.links[i as usize])
    }

    /// Links between a specific AS pair (there may be several — AS D has
    /// four to the Eyeball ISP in the reproduction scenario).
    pub fn links_between(&self, x: AsId, y: AsId) -> Vec<&Link> {
        self.links_of(x).filter(|l| l.touches(y)).collect()
    }

    /// Neighbors of `asn` with the directed relationship of stepping from
    /// `asn` onto each link ([`DirectedRel::Up`] means the neighbor is
    /// `asn`'s provider).
    pub fn neighbors(&self, asn: AsId) -> Vec<(AsId, DirectedRel)> {
        self.links_of(asn).map(|l| (l.other(asn), self.directed_rel(l, asn))).collect()
    }

    /// Prefixes originated by `asn`.
    pub fn prefixes_of(&self, asn: AsId) -> &[Ipv4Net] {
        self.prefixes.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of RIB entries.
    pub fn rib_size(&self) -> usize {
        self.rib.len()
    }
}

/// Directed relationship of a link traversal, used by the routing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectedRel {
    /// Moving from a customer up to its provider.
    Up,
    /// Crossing a peering link.
    Peer,
    /// Moving from a provider down to its customer.
    Down,
}

impl Topology {
    /// The directed relationship when traversing `link` from `from`.
    pub fn directed_rel(&self, link: &Link, from: AsId) -> DirectedRel {
        match link.rel {
            Relationship::PeerToPeer => DirectedRel::Peer,
            Relationship::CustomerToProvider => {
                if link.a == from {
                    DirectedRel::Up
                } else {
                    DirectedRel::Down
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord() -> Coord {
        Coord::new(50.0, 8.0)
    }

    fn base() -> Topology {
        let mut t = Topology::new();
        for (id, name, kind) in [
            (1, "Eyeball", AsKind::Eyeball),
            (2, "TransitA", AsKind::Transit),
            (3, "CdnX", AsKind::Cdn),
        ] {
            t.add_as(AsInfo { id: AsId(id), name: name.into(), kind, location: coord() });
        }
        t
    }

    #[test]
    fn origin_lookup_prefers_longest_prefix() {
        let mut t = base();
        t.announce(AsId(3), Ipv4Net::parse("23.0.0.0/12").unwrap());
        t.announce(AsId(2), Ipv4Net::parse("23.1.0.0/16").unwrap());
        assert_eq!(t.origin_of("23.1.2.3".parse().unwrap()), Some(AsId(2)));
        assert_eq!(t.origin_of("23.2.2.3".parse().unwrap()), Some(AsId(3)));
        assert_eq!(t.origin_of("9.9.9.9".parse().unwrap()), None);
        assert_eq!(t.rib_size(), 2);
    }

    #[test]
    fn multiple_links_between_pair() {
        let mut t = base();
        let l1 = t.add_link(AsId(1), AsId(2), Relationship::PeerToPeer, 10e9);
        let l2 = t.add_link(AsId(1), AsId(2), Relationship::PeerToPeer, 10e9);
        assert_ne!(l1, l2);
        assert_eq!(t.links_between(AsId(1), AsId(2)).len(), 2);
        assert_eq!(t.links_between(AsId(1), AsId(3)).len(), 0);
    }

    #[test]
    fn directed_relationship() {
        let mut t = base();
        // AS1 is a customer of AS2.
        let l = t.add_link(AsId(1), AsId(2), Relationship::CustomerToProvider, 10e9);
        let link = t.link(l).clone();
        assert_eq!(t.directed_rel(&link, AsId(1)), DirectedRel::Up);
        assert_eq!(t.directed_rel(&link, AsId(2)), DirectedRel::Down);
        let lp = t.add_link(AsId(2), AsId(3), Relationship::PeerToPeer, 10e9);
        let link = t.link(lp).clone();
        assert_eq!(t.directed_rel(&link, AsId(2)), DirectedRel::Peer);
    }

    #[test]
    fn link_other_endpoint() {
        let mut t = base();
        let l = t.add_link(AsId(1), AsId(2), Relationship::PeerToPeer, 1e9);
        let link = t.link(l);
        assert_eq!(link.other(AsId(1)), AsId(2));
        assert_eq!(link.other(AsId(2)), AsId(1));
        assert!(link.touches(AsId(1)) && link.touches(AsId(2)) && !link.touches(AsId(3)));
    }

    #[test]
    #[should_panic(expected = "duplicate AS")]
    fn duplicate_as_panics() {
        let mut t = base();
        t.add_as(AsInfo { id: AsId(1), name: "dup".into(), kind: AsKind::Transit, location: coord() });
    }

    #[test]
    fn withdraw_removes_route_and_falls_back() {
        let mut t = base();
        let agg = Ipv4Net::parse("23.0.0.0/12").unwrap();
        let specific = Ipv4Net::parse("23.1.0.0/16").unwrap();
        t.announce(AsId(3), agg);
        t.announce(AsId(3), specific);
        let ip: Ipv4Addr = "23.1.2.3".parse().unwrap();
        assert_eq!(t.origin_of(ip), Some(AsId(3)));
        // Wrong origin cannot withdraw someone else's route.
        assert!(!t.withdraw(AsId(2), specific));
        assert!(t.withdraw(AsId(3), specific));
        // Falls back to the covering aggregate; prefix list is updated.
        assert_eq!(t.origin_of(ip), Some(AsId(3)));
        assert_eq!(t.prefixes_of(AsId(3)), &[agg]);
        assert_eq!(t.rib_size(), 1);
        // Withdrawing the aggregate makes the space unroutable.
        assert!(t.withdraw(AsId(3), agg));
        assert_eq!(t.origin_of(ip), None);
        // Second withdrawal of a gone route is a no-op.
        assert!(!t.withdraw(AsId(3), agg));
    }

    #[test]
    fn compiled_rib_matches_live_rib_through_withdrawals() {
        let mut t = base();
        t.reserve_routes(3);
        t.announce(AsId(3), Ipv4Net::parse("23.0.0.0/12").unwrap());
        t.announce(AsId(2), Ipv4Net::parse("23.1.0.0/16").unwrap());
        t.announce(AsId(1), Ipv4Net::parse("84.17.0.0/16").unwrap());
        t.compact_rib();
        let probes = ["23.1.2.3", "23.2.2.3", "84.17.9.9", "9.9.9.9"];
        let flat = t.compiled_rib();
        for p in probes {
            let ip: Ipv4Addr = p.parse().unwrap();
            assert_eq!(flat.lookup(ip).map(|(_, a)| a), t.origin_of(ip), "{p}");
        }
        // A withdrawal shows up in the next compile, not the old snapshot.
        assert!(t.withdraw(AsId(2), Ipv4Net::parse("23.1.0.0/16").unwrap()));
        let flat = t.compiled_rib();
        for p in probes {
            let ip: Ipv4Addr = p.parse().unwrap();
            assert_eq!(flat.lookup(ip).map(|(_, a)| a), t.origin_of(ip), "{p}");
        }
    }

    #[test]
    fn prefixes_of_lists_announcements() {
        let mut t = base();
        let p = Ipv4Net::parse("17.0.0.0/8").unwrap();
        t.announce(AsId(3), p);
        assert_eq!(t.prefixes_of(AsId(3)), &[p]);
        assert!(t.prefixes_of(AsId(1)).is_empty());
    }
}
