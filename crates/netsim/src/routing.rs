//! Valley-free (Gao–Rexford) AS path selection.
//!
//! Traffic from a CDN cache to the Eyeball ISP follows an economically valid
//! AS path: zero or more customer→provider ("up") hops, at most one peering
//! hop, then zero or more provider→customer ("down") hops. Among valid paths
//! the router prefers the shortest, breaking ties on the smallest AS number
//! at the first divergence, which makes path selection deterministic — a
//! requirement for reproducible figures.
//!
//! The *handover AS* of a flow (the neighbor that hands it into the measured
//! ISP — the quantity behind Figure 8) is simply the penultimate AS on the
//! source→ISP path, exposed via [`Router::handover`].

use crate::topology::{AsId, DirectedRel, Topology};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Phase of a valley-free walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Stage {
    /// Still climbing customer→provider links.
    Up,
    /// Crossed the single permitted peering link.
    Peer,
    /// Descending provider→customer links.
    Down,
}

fn transition(stage: Stage, rel: DirectedRel) -> Option<Stage> {
    match (stage, rel) {
        (Stage::Up, DirectedRel::Up) => Some(Stage::Up),
        (Stage::Up, DirectedRel::Peer) => Some(Stage::Peer),
        (Stage::Up, DirectedRel::Down) => Some(Stage::Down),
        (Stage::Peer, DirectedRel::Down) | (Stage::Down, DirectedRel::Down) => Some(Stage::Down),
        _ => None,
    }
}

/// Computes and caches valley-free shortest AS paths over a [`Topology`].
#[derive(Debug, Default)]
pub struct Router {
    cache: HashMap<(AsId, AsId), Option<Vec<AsId>>>,
}

impl Router {
    /// A router with an empty path cache.
    pub fn new() -> Router {
        Router::default()
    }

    /// The valley-free shortest AS path from `src` to `dst` (inclusive of
    /// both), or `None` if no economically valid path exists.
    pub fn path(&mut self, topo: &Topology, src: AsId, dst: AsId) -> Option<Vec<AsId>> {
        if let Some(hit) = self.cache.get(&(src, dst)) {
            return hit.clone();
        }
        let result = Self::bfs(topo, src, dst);
        self.cache.insert((src, dst), result.clone());
        result
    }

    fn bfs(topo: &Topology, src: AsId, dst: AsId) -> Option<Vec<AsId>> {
        if src == dst {
            return Some(vec![src]);
        }
        // BFS over (AS, stage) states. Neighbor exploration is sorted so the
        // first path found is the deterministic tie-break winner.
        let mut parents: HashMap<(AsId, Stage), (AsId, Stage)> = HashMap::new();
        let mut queue: VecDeque<(AsId, Stage)> = VecDeque::new();
        let start = (src, Stage::Up);
        parents.insert(start, start);
        queue.push_back(start);
        let mut goal: Option<(AsId, Stage)> = None;
        'bfs: while let Some((node, stage)) = queue.pop_front() {
            let mut nexts: Vec<(AsId, Stage)> = topo
                .neighbors(node)
                .into_iter()
                .filter_map(|(nb, rel)| transition(stage, rel).map(|s| (nb, s)))
                .collect();
            nexts.sort_by_key(|&(nb, s)| (nb.0, s));
            nexts.dedup();
            for state in nexts {
                if let Entry::Vacant(e) = parents.entry(state) {
                    e.insert((node, stage));
                    if state.0 == dst {
                        goal = Some(state);
                        break 'bfs;
                    }
                    queue.push_back(state);
                }
            }
        }
        let mut state = goal?;
        let mut rev = vec![state.0];
        while state != start {
            state = parents[&state];
            rev.push(state.0);
        }
        rev.reverse();
        Some(rev)
    }

    /// The handover AS for traffic flowing along `path` into its final AS:
    /// the penultimate element. `None` for degenerate paths (length < 2),
    /// i.e. traffic originating inside the destination AS itself.
    pub fn handover(path: &[AsId]) -> Option<AsId> {
        if path.len() >= 2 {
            Some(path[path.len() - 2])
        } else {
            None
        }
    }

    /// Number of cached (src, dst) entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsInfo, AsKind, Relationship, Topology};
    use mcdn_geo::Coord;

    fn add(t: &mut Topology, id: u32, kind: AsKind) {
        t.add_as(AsInfo {
            id: AsId(id),
            name: format!("AS{id}"),
            kind,
            location: Coord::new(0.0, 0.0),
        });
    }

    /// Diamond: 1 and 4 are customers of transits 2 and 3; 2–3 peer.
    fn diamond() -> Topology {
        let mut t = Topology::new();
        add(&mut t, 1, AsKind::Eyeball);
        add(&mut t, 2, AsKind::Transit);
        add(&mut t, 3, AsKind::Transit);
        add(&mut t, 4, AsKind::Cdn);
        t.add_link(AsId(1), AsId(2), Relationship::CustomerToProvider, 10e9);
        t.add_link(AsId(1), AsId(3), Relationship::CustomerToProvider, 10e9);
        t.add_link(AsId(4), AsId(2), Relationship::CustomerToProvider, 10e9);
        t.add_link(AsId(4), AsId(3), Relationship::CustomerToProvider, 10e9);
        t.add_link(AsId(2), AsId(3), Relationship::PeerToPeer, 10e9);
        t
    }

    #[test]
    fn shortest_valley_free_path() {
        let t = diamond();
        let mut r = Router::new();
        let p = r.path(&t, AsId(4), AsId(1)).unwrap();
        // Up to a transit, down to the eyeball; lowest-AS tie-break picks 2.
        assert_eq!(p, vec![AsId(4), AsId(2), AsId(1)]);
        assert_eq!(Router::handover(&p), Some(AsId(2)));
    }

    #[test]
    fn same_as_is_trivial_path() {
        let t = diamond();
        let mut r = Router::new();
        assert_eq!(r.path(&t, AsId(1), AsId(1)), Some(vec![AsId(1)]));
        assert_eq!(Router::handover(&[AsId(1)]), None);
    }

    #[test]
    fn valley_paths_are_rejected() {
        // 2 and 3 are both providers of 1, and have no other connection:
        // 2 → 1 → 3 would be a valley; no valid 2→3 path exists.
        let mut t = Topology::new();
        add(&mut t, 1, AsKind::Eyeball);
        add(&mut t, 2, AsKind::Transit);
        add(&mut t, 3, AsKind::Transit);
        t.add_link(AsId(1), AsId(2), Relationship::CustomerToProvider, 1e9);
        t.add_link(AsId(1), AsId(3), Relationship::CustomerToProvider, 1e9);
        let mut r = Router::new();
        assert_eq!(r.path(&t, AsId(2), AsId(3)), None);
    }

    #[test]
    fn single_peering_hop_allowed_two_rejected() {
        // 10 -peer- 11 -peer- 12: one peer hop is fine, two is not.
        let mut t = Topology::new();
        add(&mut t, 10, AsKind::Cdn);
        add(&mut t, 11, AsKind::Transit);
        add(&mut t, 12, AsKind::Eyeball);
        t.add_link(AsId(10), AsId(11), Relationship::PeerToPeer, 1e9);
        t.add_link(AsId(11), AsId(12), Relationship::PeerToPeer, 1e9);
        let mut r = Router::new();
        assert_eq!(r.path(&t, AsId(10), AsId(11)), Some(vec![AsId(10), AsId(11)]));
        assert_eq!(r.path(&t, AsId(10), AsId(12)), None);
    }

    #[test]
    fn customer_route_reachable_through_provider_chain() {
        // 20 ← provider of 21 ← provider of 22 (a small customer cone).
        let mut t = Topology::new();
        add(&mut t, 20, AsKind::Transit);
        add(&mut t, 21, AsKind::Transit);
        add(&mut t, 22, AsKind::Eyeball);
        t.add_link(AsId(21), AsId(20), Relationship::CustomerToProvider, 1e9);
        t.add_link(AsId(22), AsId(21), Relationship::CustomerToProvider, 1e9);
        let mut r = Router::new();
        assert_eq!(
            r.path(&t, AsId(20), AsId(22)),
            Some(vec![AsId(20), AsId(21), AsId(22)])
        );
        // And the reverse climbs up.
        assert_eq!(
            r.path(&t, AsId(22), AsId(20)),
            Some(vec![AsId(22), AsId(21), AsId(20)])
        );
    }

    #[test]
    fn direct_peering_beats_transit_detour() {
        let mut t = diamond();
        // Add a direct peering between CDN (4) and eyeball (1).
        t.add_link(AsId(4), AsId(1), Relationship::PeerToPeer, 10e9);
        let mut r = Router::new();
        let p = r.path(&t, AsId(4), AsId(1)).unwrap();
        assert_eq!(p, vec![AsId(4), AsId(1)], "shorter direct path wins");
        assert_eq!(Router::handover(&p), Some(AsId(4)));
    }

    #[test]
    fn cache_is_used() {
        let t = diamond();
        let mut r = Router::new();
        let a = r.path(&t, AsId(4), AsId(1));
        let b = r.path(&t, AsId(4), AsId(1));
        assert_eq!(a, b);
        assert_eq!(r.cache_len(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let t = diamond();
        let p1 = Router::new().path(&t, AsId(4), AsId(1));
        let p2 = Router::new().path(&t, AsId(4), AsId(1));
        assert_eq!(p1, p2);
    }
}
