//! Poisoning-sweep summary: mis-mapping and cache-poisoning deltas with
//! bailiwick enforcement on versus off.
//!
//! The chaos table quantifies what the Meta-CDN loses when hardware
//! fails; this table quantifies what it loses when *answers lie*. Each
//! row condenses one [`PoisonRunResult`] into the rates that matter: how
//! often demand was handed to the attacker prefix, how many forged
//! records made it into a resolver cache, and how much of the mangled
//! wire traffic the total decoder rejected — all relative to the quiet
//! baseline, so the enforcement delta is a column, not an exercise for
//! the reader.

use crate::table::Table;
use mcdn_scenario::PoisonRunResult;

/// One poisoning scenario's run, summarized against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisonSummary {
    /// Scenario name.
    pub scenario: &'static str,
    /// Whether bailiwick enforcement was on.
    pub enforce: bool,
    /// Forgeries the Byzantine upstream injected.
    pub tampered: u64,
    /// Fraction of resolutions routed to the attacker prefix.
    pub mis_map_rate: f64,
    /// Mis-mapping rate minus the baseline's.
    pub mis_map_delta: f64,
    /// Out-of-bailiwick records found cached across the run.
    pub poisoned_cache_records: u64,
    /// Fraction of resolutions that still failed after retries.
    pub failure_rate: f64,
    /// Fraction of wire-stage messages the decoder rejected.
    pub wire_reject_rate: f64,
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Summarizes a sweep. The first result is treated as the baseline (the
/// convention of [`mcdn_scenario::poison_grid`]); the mis-mapping delta
/// is relative to it, so the baseline row's delta is zero by
/// construction.
pub fn summarize_poisoning(results: &[PoisonRunResult]) -> Vec<PoisonSummary> {
    let base = results.first().map_or(0.0, |r| rate(r.attacker_routed, r.resolutions));
    results
        .iter()
        .map(|r| {
            let mis_map_rate = rate(r.attacker_routed, r.resolutions);
            PoisonSummary {
                scenario: r.scenario,
                enforce: r.enforce,
                tampered: r.tampered,
                mis_map_rate,
                mis_map_delta: mis_map_rate - base,
                poisoned_cache_records: r.out_of_bailiwick_cached,
                failure_rate: rate(r.transient_failures, r.resolutions),
                wire_reject_rate: rate(r.wire_decode_errors, r.wire_messages),
            }
        })
        .collect()
}

/// Renders the sweep summary as the poisoning table (one row per
/// scenario).
pub fn poisoning_table(results: &[PoisonRunResult]) -> Table {
    let mut t = Table::new(
        "Poisoning sweep — mis-mapping and cache poisoning, enforcement on vs off",
        &[
            "scenario",
            "bailiwick",
            "forged",
            "mis-map",
            "Δ mis-map",
            "poisoned cache",
            "fail rate",
            "wire rejects",
        ],
    );
    for s in summarize_poisoning(results) {
        t.push(vec![
            s.scenario.to_string(),
            if s.enforce { "enforce" } else { "open" }.to_string(),
            s.tampered.to_string(),
            format!("{:.4}", s.mis_map_rate),
            format!("{:+.4}", s.mis_map_delta),
            s.poisoned_cache_records.to_string(),
            format!("{:.4}", s.failure_rate),
            format!("{:.4}", s.wire_reject_rate),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_geo::Duration;
    use mcdn_scenario::{params, poison_grid, run_poison, ScenarioConfig};

    #[test]
    fn baseline_row_has_zero_delta_and_open_spoofing_shows_one() {
        let mut cfg = ScenarioConfig::fast();
        let release = params::release();
        cfg.traffic_start = release - Duration::hours(1);
        cfg.traffic_end = release + Duration::hours(3);
        let grid = poison_grid(cfg.seed);
        let results = vec![run_poison(&cfg, &grid[0]), run_poison(&cfg, &grid[2])];
        let summaries = summarize_poisoning(&results);
        assert_eq!(summaries[0].scenario, "baseline-quiet");
        assert_eq!(summaries[0].mis_map_delta, 0.0);
        assert_eq!(summaries[1].scenario, "spoof-a-open");
        assert!(
            summaries[1].mis_map_delta > 0.0,
            "disabling enforcement must show a measurable mis-mapping delta"
        );
        let t = poisoning_table(&results);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.cell(1, 1), Some("open"));
    }
}
