//! Table 1: the Apple server naming scheme, validated against the scan.

use crate::table::Table;
use mcdn_atlas::scan_prefix;
use mcdn_cdn::naming::ServerName;
use mcdn_cdn::AppleCdn;
use mcdn_scenario::World;

/// Regenerates Table 1: the scheme fields with their meanings, plus a
/// parsed example from the live scan.
pub fn table1(world: &World) -> Table {
    let mut t = Table::new(
        "Table 1 — Apple server naming scheme (ab-c-d-e.aaplimg.com)",
        &["identifier", "meaning", "example value"],
    );
    // Pull a real example from the scan, preferring the vip function the
    // paper's example shows.
    let example = scan_prefix(
        AppleCdn::delivery_prefix(),
        1,
        |ip| world.apple.serves_ios_images(ip),
        |ip| world.apple.ptr_lookup(ip).map(|n| n.fqdn()),
    )
    .into_iter()
    .filter_map(|h| h.ptr)
    .filter_map(|p| ServerName::parse(&p))
    .find(|n| n.function == mcdn_cdn::naming::Function::Vip)
    .expect("scan finds a vip");

    t.push(vec![
        "a".into(),
        "UN/LOCODE location (e.g. deber for Berlin)".into(),
        example.locode.to_string(),
    ]);
    t.push(vec!["b".into(), "Location site id".into(), example.site_id.to_string()]);
    t.push(vec![
        "c".into(),
        "Function: vip, edge, gslb, dns, ntp, tool".into(),
        example.function.token().into(),
    ]);
    t.push(vec![
        "d".into(),
        "Secondary function identifier: bx, lx, sx".into(),
        example.subfunction.token().into(),
    ]);
    t.push(vec![
        "e".into(),
        "Id for same-function server".into(),
        format!("{:03}", example.index),
    ]);
    t.push(vec!["(example)".into(), "full name".into(), example.fqdn()]);
    t
}

/// Validation statistics: how many scanned PTR names parse under the
/// scheme (the paper reconstructed the scheme because *all* of them do).
pub fn scheme_coverage(world: &World) -> (usize, usize) {
    let mut total = 0;
    let mut parsed = 0;
    for ip in world.apple.all_ips() {
        if let Some(name) = world.apple.ptr_lookup(*ip) {
            total += 1;
            if ServerName::parse(&name.fqdn()).is_some() {
                parsed += 1;
            }
        }
    }
    (parsed, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_scenario::ScenarioConfig;

    #[test]
    fn scheme_rows_and_full_coverage() {
        let world = World::build(&ScenarioConfig::fast());
        let t = table1(&world);
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.cell(0, 0), Some("a"));
        let (parsed, total) = scheme_coverage(&world);
        assert!(total > 1000);
        assert_eq!(parsed, total, "every infrastructure name follows the scheme");
    }
}
