//! Figure 4: unique CDN cache IPs per continent over the global campaign.

use crate::table::Table;
use mcdn_geo::{Continent, Duration, SimTime};
use mcdn_scenario::{CdnClass, DnsCampaignResult};

/// The full Figure 4 series: one row per (bin, continent, class) with the
/// unique-IP count.
pub fn fig4_series(result: &DnsCampaignResult) -> Table {
    let mut t = Table::new(
        "Figure 4 — Unique CDN cache IPs, worldwide measurement",
        &["bin start", "continent", "cdn", "unique IPs"],
    );
    for (bin, cont, class, count) in result.unique_ips.series() {
        t.push(vec![bin.to_string(), cont.to_string(), class.to_string(), count.to_string()]);
    }
    t
}

/// Headline statistics of the figure: per continent, the pre-event average
/// hourly unique-IP total, the event-window peak, and their ratio (the
/// paper reports Europe peaking at 977 vs a 191 pre-event average — a >4×
/// spike — and no comparable spike elsewhere).
pub fn fig4_summary(result: &DnsCampaignResult, release: SimTime) -> Table {
    let mut t = Table::new(
        "Figure 4 summary — pre-event avg vs event peak per continent",
        &["continent", "pre-event avg/bin", "event peak/bin", "ratio"],
    );
    for cont in Continent::ALL {
        let mut pre: Vec<usize> = Vec::new();
        let mut peak = 0usize;
        let mut totals: std::collections::BTreeMap<SimTime, usize> = Default::default();
        for (bin, c, _class, count) in result.unique_ips.series() {
            if c == cont {
                *totals.entry(bin).or_default() += count;
            }
        }
        for (bin, total) in totals {
            if bin < release && bin >= release - Duration::days(2) {
                pre.push(total);
            }
            if bin >= release && bin < release + Duration::days(2) {
                peak = peak.max(total);
            }
        }
        let avg = if pre.is_empty() { 0.0 } else { pre.iter().sum::<usize>() as f64 / pre.len() as f64 };
        let ratio = if avg > 0.0 { peak as f64 / avg } else { 0.0 };
        t.push(vec![
            cont.to_string(),
            format!("{avg:.0}"),
            peak.to_string(),
            format!("{ratio:.2}x"),
        ]);
    }
    t
}

/// The class breakdown at the peak European bin (who caused the spike —
/// the paper attributes it mostly to Limelight, then Akamai incl. its
/// other-AS caches).
pub fn fig4_eu_peak_breakdown(result: &DnsCampaignResult, release: SimTime) -> Table {
    // Find the densest EU bin in the event window.
    let mut totals: std::collections::BTreeMap<SimTime, usize> = Default::default();
    for (bin, c, _class, count) in result.unique_ips.series() {
        if c == Continent::Europe && bin >= release && bin < release + Duration::days(2) {
            *totals.entry(bin).or_default() += count;
        }
    }
    let peak_bin = totals.iter().max_by_key(|(_, v)| **v).map(|(k, _)| *k);
    let mut t = Table::new(
        "Figure 4 — Europe peak-bin breakdown by CDN class",
        &["cdn", "unique IPs"],
    );
    if let Some(bin) = peak_bin {
        for class in CdnClass::ALL {
            let n = result.unique_ips.count(bin, Continent::Europe, class);
            t.push(vec![class.to_string(), n.to_string()]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_atlas::UniqueIpAggregator;
    use mcdn_scenario::DnsCampaignResult;
    use std::net::Ipv4Addr;

    fn synthetic() -> (DnsCampaignResult, SimTime) {
        let release = SimTime::from_ymd_hms(2017, 9, 19, 17, 0, 0);
        let mut agg = UniqueIpAggregator::new(Duration::hours(1));
        // Pre-event: 10 Limelight IPs per hour for two days.
        let mut t = release - Duration::days(2);
        while t < release {
            for i in 0..10u32 {
                agg.record(t, Continent::Europe, CdnClass::Limelight, Ipv4Addr::from(0x4400_0000 + i));
            }
            t += Duration::hours(1);
        }
        // Event hour: 50 IPs.
        for i in 0..50u32 {
            agg.record(
                release + Duration::mins(30),
                Continent::Europe,
                CdnClass::Limelight,
                Ipv4Addr::from(0x4400_0000 + i),
            );
        }
        (
            DnsCampaignResult {
                unique_ips: agg,
                ip_classes: Default::default(),
                resolutions: 0,
                attempts: 0,
                retry_exhausted: 0,
                memo_lookups: 0,
                memo_hits: 0,
                reused_resolutions: 0,
            },
            release,
        )
    }

    #[test]
    fn summary_ratio_is_peak_over_pre_average() {
        let (result, release) = synthetic();
        let t = fig4_summary(&result, release);
        let eu = t.find_row(0, "Europe").expect("Europe row");
        assert_eq!(eu[1], "10");
        assert_eq!(eu[2], "50");
        assert_eq!(eu[3], "5.00x");
        // Continents without data report zero, not garbage.
        let asia = t.find_row(0, "Asia").expect("Asia row");
        assert_eq!(asia[2], "0");
    }

    #[test]
    fn series_has_one_row_per_cell() {
        let (result, _) = synthetic();
        let t = fig4_series(&result);
        assert_eq!(t.rows.len(), 48 + 1, "48 pre-event hours + 1 event hour");
    }

    #[test]
    fn peak_breakdown_reports_all_classes() {
        let (result, release) = synthetic();
        let t = fig4_eu_peak_breakdown(&result, release);
        assert_eq!(t.rows.len(), CdnClass::ALL.len());
        assert_eq!(t.find_row(0, "Limelight").unwrap()[1], "50");
        assert_eq!(t.find_row(0, "Apple").unwrap()[1], "0");
    }
}
