//! Figure 7: update traffic by source AS (CDN) during the iOS update.
//!
//! Pipeline exactly as §5.3: select server IPs observed in the DNS
//! measurements, find flows from them in (sampled) NetFlow, scale volumes
//! by SNMP octet counters, attribute to CDNs, and normalize each CDN's
//! hourly rate by its own maximum over the three pre-update days.

use crate::table::Table;
use mcdn_geo::{Duration, SimTime};
use mcdn_isp::estimate::scale_by_snmp_with_coverage;
use mcdn_scenario::{CdnClass, TrafficResult};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// The three CDNs panelled in Figure 7.
pub const PANELS: [CdnClass; 3] = [CdnClass::Akamai, CdnClass::Limelight, CdnClass::Apple];

/// Hourly traffic volume per CDN, bytes. Only flows whose source address
/// was observed in DNS (i.e. appears in `ip_classes`) are attributed —
/// the same restriction the paper's cross-correlation has.
pub fn hourly_by_cdn(
    traffic: &TrafficResult,
    ip_classes: &HashMap<Ipv4Addr, CdnClass>,
) -> BTreeMap<(SimTime, CdnClass), f64> {
    // The coverage-aware scaler degrades gracefully when SNMP polls
    // were missed (gapped cells fall back to sampling-rate inversion
    // instead of silently reading zero); with complete SNMP coverage it
    // is identical to the plain SNMP scaler.
    let (scaled, _coverage) =
        scale_by_snmp_with_coverage(&traffic.flows, &traffic.snmp, traffic.sampling);
    let mut out: BTreeMap<(SimTime, CdnClass), f64> = BTreeMap::new();
    for v in scaled {
        let Some(class) = ip_classes.get(&v.src) else { continue };
        let hour = v.bin.floor_to(Duration::HOUR);
        *out.entry((hour, class.cdn())).or_insert(0.0) += v.bytes;
    }
    out
}

/// Per-CDN maximum hourly volume over the three days before `release_day`
/// (the figure's 100 % reference).
fn pre_update_peak(
    hourly: &BTreeMap<(SimTime, CdnClass), f64>,
    release_day: SimTime,
) -> HashMap<CdnClass, f64> {
    let from = release_day - Duration::days(3);
    let mut peaks = HashMap::new();
    for ((hour, class), bytes) in hourly {
        if *hour >= from && *hour < release_day {
            let e = peaks.entry(*class).or_insert(0.0f64);
            *e = e.max(*bytes);
        }
    }
    peaks
}

/// The Figure 7 ratio series: per hour and CDN, traffic as a percentage of
/// that CDN's pre-update three-day peak.
pub fn fig7_series(
    traffic: &TrafficResult,
    ip_classes: &HashMap<Ipv4Addr, CdnClass>,
    release: SimTime,
) -> Table {
    let hourly = hourly_by_cdn(traffic, ip_classes);
    let peaks = pre_update_peak(&hourly, release.floor_day());
    let mut t = Table::new(
        "Figure 7 — Update traffic by source AS (ratio vs pre-update peak)",
        &["hour", "cdn", "ratio %"],
    );
    for ((hour, class), bytes) in &hourly {
        if !PANELS.contains(class) {
            continue;
        }
        let peak = peaks.get(class).copied().unwrap_or(0.0);
        let ratio = if peak > 0.0 { bytes / peak * 100.0 } else { 0.0 };
        t.push(vec![hour.to_string(), class.to_string(), format!("{ratio:.0}")]);
    }
    t
}

/// Headline statistics: per CDN the peak ratio reached on/after release day
/// (paper: Apple 211 %, Limelight 438 %, Akamai 113 %) and the share of
/// excess (above-pre-peak) volume per day (paper, Sep 19: 33 % Apple /
/// 44 % Limelight / 23 % Akamai; Sep 20–21 ≈ 60/40/0).
pub fn fig7_summary(
    traffic: &TrafficResult,
    ip_classes: &HashMap<Ipv4Addr, CdnClass>,
    release: SimTime,
) -> Table {
    let hourly = hourly_by_cdn(traffic, ip_classes);
    let release_day = release.floor_day();
    let peaks = pre_update_peak(&hourly, release_day);

    // Peak ratios.
    let mut peak_ratio: HashMap<CdnClass, f64> = HashMap::new();
    // Excess volume per (day, cdn): traffic above the same-hour pre-update
    // average (a simple seasonal baseline).
    let mut pre_hour_sum: HashMap<(u32, CdnClass), (f64, u32)> = HashMap::new();
    for ((hour, class), bytes) in &hourly {
        if *hour >= release_day - Duration::days(3) && *hour < release_day {
            let e = pre_hour_sum.entry((hour.hour(), *class)).or_insert((0.0, 0));
            e.0 += bytes;
            e.1 += 1;
        }
    }
    let mut excess: BTreeMap<(SimTime, CdnClass), f64> = BTreeMap::new();
    for ((hour, class), bytes) in &hourly {
        if *hour < release_day {
            continue;
        }
        if let Some(peak) = peaks.get(class) {
            if *peak > 0.0 {
                let r = bytes / peak * 100.0;
                let e = peak_ratio.entry(*class).or_insert(0.0);
                *e = e.max(r);
            }
        }
        let baseline = pre_hour_sum
            .get(&(hour.hour(), *class))
            .map(|(s, n)| s / *n as f64)
            .unwrap_or(0.0);
        *excess.entry((hour.floor_day(), *class)).or_insert(0.0) +=
            (bytes - baseline).max(0.0);
    }

    let mut t = Table::new(
        "Figure 7 summary — peak ratio and daily excess-volume share",
        &["cdn", "peak ratio %", "excess share day 0", "day 1", "day 2"],
    );
    let day_total = |d: SimTime| -> f64 {
        PANELS.iter().map(|c| excess.get(&(d, *c)).copied().unwrap_or(0.0)).sum()
    };
    for class in PANELS {
        let share = |d: SimTime| -> String {
            let total = day_total(d);
            if total > 0.0 {
                format!("{:.0}%", excess.get(&(d, class)).copied().unwrap_or(0.0) / total * 100.0)
            } else {
                "—".into()
            }
        };
        t.push(vec![
            class.to_string(),
            format!("{:.0}", peak_ratio.get(&class).copied().unwrap_or(0.0)),
            share(release_day),
            share(release_day + Duration::days(1)),
            share(release_day + Duration::days(2)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_isp::{FlowRecord, SnmpCounters};
    use mcdn_netsim::LinkId;
    use mcdn_scenario::TrafficResult;

    /// Builds a synthetic telemetry window: two quiet pre-days at 1000
    /// bytes/hour for one Limelight IP, then a release day at 5000.
    fn synthetic() -> (TrafficResult, HashMap<Ipv4Addr, CdnClass>, SimTime) {
        let release = SimTime::from_ymd_hms(2017, 9, 19, 17, 0, 0);
        let ll_ip: Ipv4Addr = "68.232.0.1".parse().unwrap();
        let link = LinkId(3);
        let mut snmp = SnmpCounters::new();
        let mut flows = Vec::new();
        let mut t = release.floor_day() - Duration::days(3);
        while t < release.floor_day() + Duration::days(1) {
            let bytes: u32 = if t >= release { 5000 } else { 1000 };
            snmp.account(link, bytes as u64);
            snmp.poll(t);
            flows.push((
                t,
                link,
                FlowRecord {
                    src: ll_ip,
                    dst: "84.17.0.1".parse().unwrap(),
                    input_if: 3,
                    packets: 1,
                    bytes,
                    src_as: 22822,
                    dst_as: 3320,
                },
            ));
            t += Duration::HOUR;
        }
        let mut ip_classes = HashMap::new();
        ip_classes.insert(ll_ip, CdnClass::Limelight);
        let traffic = TrafficResult { flows, snmp, dropped_bytes: 0, sampling: 1, export_losses: 0, polls_missed: 0 };
        (traffic, ip_classes, release)
    }

    #[test]
    fn ratio_series_normalizes_by_pre_peak() {
        let (traffic, ip_classes, release) = synthetic();
        let t = fig7_series(&traffic, &ip_classes, release);
        let ratios: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[1] == "Limelight")
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(ratios.iter().any(|r| (*r - 100.0).abs() < 1.0), "pre-days sit at 100%");
        assert!(ratios.iter().any(|r| (*r - 500.0).abs() < 1.0), "event hits 500%");
    }

    #[test]
    fn unobserved_sources_are_not_attributed() {
        let (traffic, _, release) = synthetic();
        // Empty DNS observation set: nothing can be attributed.
        let empty = HashMap::new();
        let t = fig7_series(&traffic, &empty, release);
        assert!(t.rows.is_empty(), "the cross-correlation has nothing to match");
    }

    #[test]
    fn summary_reports_event_peak() {
        let (traffic, ip_classes, release) = synthetic();
        let t = fig7_summary(&traffic, &ip_classes, release);
        let ll = t.find_row(0, "Limelight").unwrap();
        let peak: f64 = ll[1].parse().unwrap();
        assert!((peak - 500.0).abs() < 1.0, "got {peak}");
        // All excess on day 0 belongs to Limelight (only CDN present).
        assert_eq!(ll[2], "100%");
    }
}
