//! Figure 1: the active-measurement timeline.

use crate::table::Table;
use mcdn_scenario::timeline;

/// Regenerates the Figure 1 timeline as a table of campaign bands and
/// point events.
pub fn fig1() -> Table {
    let mut t = Table::new(
        "Figure 1 — Active measurement timeline",
        &["kind", "name", "start", "end"],
    );
    for e in timeline() {
        t.push(vec![
            if e.point { "event" } else { "campaign" }.to_string(),
            e.name.to_string(),
            e.start.to_string(),
            if e.point { String::from("—") } else { e.end.to_string() },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_three_campaigns_and_the_release() {
        let t = fig1();
        assert_eq!(t.rows.iter().filter(|r| r[0] == "campaign").count(), 3);
        let release = t.find_row(1, "iOS 11.0 release").expect("release row");
        assert!(release[2].contains("Sep 19 2017 17:00"));
    }
}
