//! The analysis pipeline: regenerates every table and figure of the paper
//! from simulated measurements.
//!
//! Each `figN` module computes the same quantity the paper plots, from the
//! same kind of raw data (DNS resolutions, NetFlow records, SNMP counters),
//! and returns a [`Table`] whose rows are the figure's series. The `repro`
//! binary prints them all; `EXPERIMENTS.md` records paper-vs-measured.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig1`] | Figure 1 — measurement timeline |
//! | [`fig2`] | Figure 2 — request-mapping DNS graph with TTLs |
//! | [`fig3`] | Figure 3 — Apple delivery-site locations |
//! | [`table1`] | Table 1 — server naming scheme |
//! | [`fig4`] | Figure 4 — unique cache IPs per continent |
//! | [`fig5`] | Figure 5 — unique cache IPs inside the Eyeball ISP |
//! | [`fig6`] | Figure 6 — offload/overflow taxonomy (worked example) |
//! | [`fig7`] | Figure 7 — update traffic ratio by source AS |
//! | [`fig8`] | Figure 8 — overflow share by handover AS |
//! | [`coverage`] | Data-completeness annotations for fault-injected runs |
//! | [`chaos`] | Chaos-sweep availability/offload deltas (beyond the paper) |
//! | [`poisoning`] | Poisoning-sweep mis-mapping deltas, enforcement on vs off (beyond the paper) |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache_location;
pub mod chaos;
pub mod coverage;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod poisoning;
pub mod table;
pub mod via_inference;
pub mod table1;

pub use table::Table;
