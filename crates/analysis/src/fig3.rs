//! Figure 3: Apple delivery-site locations, rediscovered by scanning.
//!
//! Method as in the paper (§3.3): sweep Apple's address space for hosts
//! serving iOS images, enumerate their reverse-DNS names, parse the naming
//! scheme, and group by location — yielding the site map with
//! `<# sites>/<# edge-bx servers>` labels.

use crate::table::Table;
use mcdn_atlas::scan_prefix;
use mcdn_cdn::naming::{Function, ServerName, SubFunction};
use mcdn_cdn::AppleCdn;
use mcdn_geo::{Locode, Registry};
use mcdn_scenario::World;
use std::collections::BTreeMap;

/// One rediscovered location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRow {
    /// Location code as Apple spells it (e.g. `uklon`).
    pub locode: String,
    /// Resolved city name, if the LOCODE is known.
    pub city: String,
    /// Continent name.
    pub continent: String,
    /// Distinct site ids at the location.
    pub sites: usize,
    /// Total `edge-bx` servers across those sites.
    pub edge_bx: usize,
}

/// Runs the discovery scan over the delivery prefix and aggregates by
/// location. (The paper scanned all of 17.0.0.0/8; the delivery servers
/// live in 17.253.0.0/16, which we sweep exhaustively — a strided /8 sweep
/// finds the same hosts, as the integration tests verify.)
pub fn discover_sites(world: &World) -> Vec<SiteRow> {
    let hits = scan_prefix(
        AppleCdn::delivery_prefix(),
        1,
        |ip| world.apple.serves_ios_images(ip),
        |ip| world.apple.ptr_lookup(ip).map(|n| n.fqdn()),
    );
    let mut by_loc: BTreeMap<String, (std::collections::BTreeSet<u8>, usize)> = BTreeMap::new();
    for hit in hits {
        let Some(ptr) = hit.ptr else { continue };
        let Some(name) = ServerName::parse(&ptr) else { continue };
        let entry = by_loc.entry(name.locode.to_string()).or_default();
        entry.0.insert(name.site_id);
        // Count edge-bx servers only, as the paper's labels do.
        if name.function == Function::Edge && name.subfunction == SubFunction::Bx {
            entry.1 += 1;
        }
    }
    by_loc
        .into_iter()
        .map(|(loc, (sites, edge_bx))| {
            let city = Locode::parse(&loc).and_then(Registry::by_locode);
            SiteRow {
                locode: loc,
                city: city.map(|c| c.name.to_string()).unwrap_or_else(|| "?".into()),
                continent: city.map(|c| c.continent.name().to_string()).unwrap_or_default(),
                sites: sites.len(),
                edge_bx,
            }
        })
        .collect()
}

/// Regenerates Figure 3 as a table, one row per discovered location with
/// the paper's `sites/servers` label.
pub fn fig3(world: &World) -> Table {
    let mut t = Table::new(
        "Figure 3 — Apple delivery server locations (discovered by scan)",
        &["locode", "city", "continent", "sites", "edge-bx", "label"],
    );
    for row in discover_sites(world) {
        t.push(vec![
            row.locode.clone(),
            row.city.clone(),
            row.continent.clone(),
            row.sites.to_string(),
            row.edge_bx.to_string(),
            format!("{}/{}", row.sites, row.edge_bx),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_scenario::ScenarioConfig;

    #[test]
    fn rediscovers_34_locations() {
        let world = World::build(&ScenarioConfig::fast());
        let rows = discover_sites(&world);
        assert_eq!(rows.len(), 34, "the paper found 34 site locations");
        // The scan must reproduce the ground truth exactly.
        let total_bx: usize = rows.iter().map(|r| r.edge_bx).sum();
        assert_eq!(total_bx, world.apple.total_bx());
        // London appears under Apple's uklon alias but resolves to London.
        let london = rows.iter().find(|r| r.locode == "uklon").expect("uklon row");
        assert_eq!(london.city, "London");
        assert_eq!(london.sites, 2);
        // No South American or African locations.
        assert!(rows
            .iter()
            .all(|r| r.continent != "South America" && r.continent != "Africa"));
    }

    #[test]
    fn labels_match_site_structure() {
        let world = World::build(&ScenarioConfig::fast());
        let t = fig3(&world);
        let frankfurt = t.find_row(0, "defra").expect("defra row");
        assert_eq!(frankfurt[5], "2/80", "Frankfurt hosts two 40-bx sites");
    }
}
