//! Cache-hierarchy inference from HTTP headers (§3.3).
//!
//! The paper infers the internal structure of Apple's edge sites purely
//! from download response headers: `Via` chains show `edge-bx` caches in
//! front of `edge-lx` parents in front of an origin shield, and the
//! `vip`/`edge` naming plus observed fan-in implies each advertised vip
//! address fronts four `edge-bx` servers. This module re-runs that
//! inference over a corpus of simulated downloads.

use crate::table::Table;
use mcdn_cdn::naming::{Function, ServerName, SubFunction};
use mcdn_cdn::{HttpRequest, HttpResponse};
use mcdn_scenario::World;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// What a header corpus reveals about one site's internals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyReport {
    /// Distinct client-facing `edge-bx` hosts seen.
    pub bx_hosts: usize,
    /// Distinct `edge-lx` parents seen.
    pub lx_hosts: usize,
    /// Distinct vips observed fronting requests.
    pub vips: usize,
    /// Inferred edge-bx per vip (the paper concludes 4).
    pub bx_per_vip: usize,
    /// Whether any chain showed an origin-shield (CloudFront) hop.
    pub origin_shield_seen: bool,
    /// Whether every host name in every `Via` chain parses under the
    /// Table 1 scheme.
    pub all_names_parse: bool,
}

/// Downloads `n_clients` distinct objects/clients through the site at
/// `site_index` and infers the hierarchy from the response headers alone
/// (the outcome struct is used only to learn the fronting vip, which in
/// reality is the IP the client connected to).
pub fn infer_hierarchy(world: &mut World, site_index: usize, n_clients: u32) -> HierarchyReport {
    let site = &mut world.apple.sites_mut()[site_index];
    let mut bx: BTreeSet<String> = BTreeSet::new();
    let mut lx: BTreeSet<String> = BTreeSet::new();
    let mut vip_to_bx: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut origin_shield_seen = false;
    let mut all_names_parse = true;
    for i in 0..n_clients {
        let client = Ipv4Addr::from(0x5411_0000u32 + i * 97);
        let req = HttpRequest {
            host: "appldnld.apple.com".into(),
            path: format!("/ios/obj-{}.ipsw", i % 7),
            client,
        };
        let object = req.path.clone();
        let (resp, outcome) = site.serve(&req, &object, 1_000_000);
        // Re-parse the rendered headers, exactly as a measurement would.
        let via = HttpResponse::parse_via(&resp.via_header()).expect("rendered Via parses");
        for hop in via {
            if hop.host.ends_with("cloudfront.net") {
                origin_shield_seen = true;
                continue;
            }
            match ServerName::parse(&hop.host) {
                Some(name) => match (name.function, name.subfunction) {
                    (Function::Edge, SubFunction::Bx) => {
                        bx.insert(hop.host.clone());
                        vip_to_bx
                            .entry(outcome.vip.fqdn())
                            .or_default()
                            .insert(hop.host.clone());
                    }
                    (Function::Edge, SubFunction::Lx) => {
                        lx.insert(hop.host.clone());
                    }
                    _ => {}
                },
                None => all_names_parse = false,
            }
        }
    }
    let vips = vip_to_bx.len();
    let bx_per_vip = if vips > 0 {
        vip_to_bx.values().map(BTreeSet::len).max().unwrap_or(0)
    } else {
        0
    };
    HierarchyReport {
        bx_hosts: bx.len(),
        lx_hosts: lx.len(),
        vips,
        bx_per_vip,
        origin_shield_seen,
        all_names_parse,
    }
}

/// The report as a printable table.
pub fn hierarchy_table(report: &HierarchyReport) -> Table {
    let mut t = Table::new(
        "§3.3 — cache hierarchy inferred from Via/X-Cache headers",
        &["observable", "value"],
    );
    t.push(vec!["distinct edge-bx hosts in Via".into(), report.bx_hosts.to_string()]);
    t.push(vec!["distinct edge-lx parents in Via".into(), report.lx_hosts.to_string()]);
    t.push(vec!["distinct fronting vips".into(), report.vips.to_string()]);
    t.push(vec!["max edge-bx per vip".into(), report.bx_per_vip.to_string()]);
    t.push(vec!["origin shield (CloudFront) seen".into(), report.origin_shield_seen.to_string()]);
    t.push(vec!["all Via names follow Table 1 scheme".into(), report.all_names_parse.to_string()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_scenario::ScenarioConfig;

    #[test]
    fn infers_the_papers_conclusions() {
        let mut world = World::build(&ScenarioConfig::fast());
        let report = infer_hierarchy(&mut world, 0, 600);
        // Paper conclusions: bx fronted by vips in groups of four, an lx
        // parent tier, an origin shield, and scheme-conformant names.
        assert_eq!(report.bx_per_vip, 4, "one vip fronts four edge-bx");
        assert!(report.lx_hosts >= 1 && report.lx_hosts <= 2);
        assert!(report.origin_shield_seen);
        assert!(report.all_names_parse);
        assert!(report.bx_hosts > report.lx_hosts, "bx tier is wider than lx");
    }

    #[test]
    fn table_renders() {
        let mut world = World::build(&ScenarioConfig::fast());
        let report = infer_hierarchy(&mut world, 2, 100);
        let t = hierarchy_table(&report);
        assert_eq!(t.rows.len(), 6);
    }
}
