//! Checks every reproducible claim of the paper against a fresh simulation
//! run and prints a PASS/FAIL table. Exits non-zero if any claim fails.
//!
//! ```text
//! check_claims [--paper]
//! ```
//!
//! Bands are deliberately loose at fast scale (sampling density limits what
//! a small fleet can see); `--paper` uses the tighter paper-scale bands.

use mcdn_analysis::{fig2, fig3, fig7, fig8, table1, Table};
use mcdn_geo::{Continent, Duration, Region, SimTime};
use mcdn_scenario::{
    loads, params, run_global_dns, run_isp_dns, run_isp_traffic, CdnClass, ScenarioConfig, World,
};

struct Claims {
    table: Table,
    failures: u32,
}

impl Claims {
    fn new() -> Claims {
        Claims {
            table: Table::new(
                "Paper claims vs this run",
                &["claim", "paper", "measured", "band", "verdict"],
            ),
            failures: 0,
        }
    }

    fn check(&mut self, claim: &str, paper: &str, measured: f64, lo: f64, hi: f64) {
        let ok = (lo..=hi).contains(&measured);
        if !ok {
            self.failures += 1;
        }
        self.table.push(vec![
            claim.to_string(),
            paper.to_string(),
            format!("{measured:.2}"),
            format!("[{lo}, {hi}]"),
            if ok { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }

    fn check_bool(&mut self, claim: &str, paper: &str, measured: bool) {
        if !measured {
            self.failures += 1;
        }
        self.table.push(vec![
            claim.to_string(),
            paper.to_string(),
            measured.to_string(),
            "true".to_string(),
            if measured { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
}

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let mut cfg = if paper_scale {
        ScenarioConfig::paper()
    } else {
        let mut c = ScenarioConfig::fast();
        c.global_probes = 250;
        c.global_dns_interval = Duration::mins(5);
        c.global_start = SimTime::from_ymd(2017, 9, 17);
        c.global_end = SimTime::from_ymd(2017, 9, 21);
        c.isp_start = SimTime::from_ymd(2017, 9, 12);
        c.isp_end = SimTime::from_ymd(2017, 9, 23);
        c
    };
    cfg.traffic_start = SimTime::from_ymd(2017, 9, 15);
    cfg.traffic_end = SimTime::from_ymd(2017, 9, 23);
    let world = World::build(&cfg);
    let release = params::release();
    let mut claims = Claims::new();

    // --- §3.2 / Figure 2 -------------------------------------------------
    let graph = fig2::fig2(&world);
    let missing = fig2::missing_edges(&graph)
        .into_iter()
        .filter(|m| !m.contains("china") && !m.contains("india"))
        .count();
    claims.check("fig2: expected mapping edges missing", "0", missing as f64, 0.0, 0.0);
    let selector_ttl_ok = graph
        .rows
        .iter()
        .filter(|r| r[0] == "appldnld.g.applimg.com")
        .all(|r| r[2] == "15");
    claims.check_bool("fig2: selector TTL is 15 s", "15 s", selector_ttl_ok);

    // --- §3.3 / Figure 3 + Table 1 ----------------------------------------
    let sites = fig3::fig3(&world);
    claims.check("fig3: discovered site locations", "34", sites.rows.len() as f64, 34.0, 34.0);
    let (parsed, total) = table1::scheme_coverage(&world);
    claims.check(
        "table1: naming-scheme parse coverage",
        "all",
        parsed as f64 / total as f64,
        1.0,
        1.0,
    );

    // --- §4 / Figures 4, 5 -------------------------------------------------
    eprintln!("running DNS campaigns…");
    let global = run_global_dns(&world, &cfg);
    let total_at = |bin: SimTime, cont: Continent| -> f64 {
        CdnClass::ALL
            .iter()
            .map(|c| global.unique_ips.count(bin, cont, *c))
            .sum::<usize>() as f64
    };
    let eu_pre = total_at(SimTime::from_ymd_hms(2017, 9, 18, 18, 0, 0), Continent::Europe);
    let eu_peak = total_at(SimTime::from_ymd_hms(2017, 9, 19, 18, 0, 0), Continent::Europe);
    claims.check("fig4: EU unique-IP spike factor", ">4x", eu_peak / eu_pre.max(1.0), 2.0, 10.0);
    let na_ratio = total_at(SimTime::from_ymd_hms(2017, 9, 19, 18, 0, 0), Continent::NorthAmerica)
        / total_at(SimTime::from_ymd_hms(2017, 9, 18, 18, 0, 0), Continent::NorthAmerica).max(1.0);
    claims.check("fig4: North America stays flat", "~1x", na_ratio, 0.5, 1.5);

    let isp = run_isp_dns(&world, &cfg);
    let (akamai_rise, apple_ratio) = mcdn_analysis::fig5::fig5_akamai_rise(&isp);
    let rise_band = if paper_scale { (300.0, 600.0) } else { (80.0, 600.0) };
    claims.check("fig5: Akamai IP rise Sep 18→20 (%)", "+408%", akamai_rise, rise_band.0, rise_band.1);
    claims.check("fig5: Apple IP stability ratio", "~1", apple_ratio, 0.5, 1.6);

    // --- §5 / Figures 7, 8 --------------------------------------------------
    eprintln!("running border telemetry…");
    let mut ip_classes = isp.ip_classes.clone();
    ip_classes.extend(global.ip_classes.iter().map(|(k, v)| (*k, *v)));
    let traffic = run_isp_traffic(&world, &cfg);
    let summary = fig7::fig7_summary(&traffic, &ip_classes, release);
    let ratio = |cdn: &str| -> f64 {
        summary.find_row(0, cdn).map(|r| r[1].parse().unwrap_or(0.0)).unwrap_or(0.0)
    };
    claims.check("fig7: Limelight peak ratio (%)", "438%", ratio("Limelight"), 300.0, 650.0);
    claims.check("fig7: Apple peak ratio (%)", "211%", ratio("Apple"), 140.0, 320.0);
    claims.check("fig7: Akamai peak ratio (%)", "113%", ratio("Akamai"), 100.0, 160.0);
    claims.check_bool(
        "fig7: ordering LL > Apple > Akamai",
        "same",
        ratio("Limelight") > ratio("Apple") && ratio("Apple") > ratio("Akamai"),
    );

    let d_share = fig8::d_peak_share(&traffic, &ip_classes, &world);
    claims.check("fig8: AS D peak overflow share", ">40%", d_share * 100.0, 40.0, 90.0);
    let saturation = fig8::fig8_d_link_saturation(&traffic, &world, cfg.traffic_tick);
    let saturated = saturation
        .rows
        .iter()
        .filter(|r| r[4].parse::<u32>().unwrap_or(0) >= 3)
        .count();
    claims.check("fig8: D links entirely saturated", "2 of 4", saturated as f64, 2.0, 4.0);

    // --- Mechanism claims ----------------------------------------------------
    loads::update_loads(&world, release + Duration::mins(30));
    let util = world.state.apple_utilization(Region::Eu);
    claims.check("§4: Apple EU runs at/over capacity at release", "high", util, 0.9, 3.0);
    // a1015 lifecycle: walk to release + 7h.
    let w2 = World::build(&cfg);
    let mut t = release - Duration::hours(1);
    while t <= release + Duration::hours(7) {
        loads::update_loads(&w2, t);
        t += Duration::mins(30);
    }
    claims.check_bool(
        "§4: a1015 map live ~6h after release",
        "Sep 19 ≈23h",
        w2.state.a1015_active(Region::Eu, release + Duration::hours(7)),
    );

    println!("{}", claims.table);
    if claims.failures > 0 {
        eprintln!("{} claim(s) FAILED", claims.failures);
        std::process::exit(1);
    }
    println!("all {} claims PASS", claims.table.rows.len());
}
