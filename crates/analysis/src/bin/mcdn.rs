//! `mcdn` — the command-line face of the Meta-CDN measurement suite.
//!
//! ```text
//! mcdn resolve <city> [--at "YYYY-MM-DD HH:MM"]   resolve appldnld.apple.com as a client there
//! mcdn crawl                                       crawl the Figure-2 mapping graph
//! mcdn scan                                        scan 17.253/16, rebuild Figure 3 + Table 1
//! mcdn campaign global|isp [--paper] [--journal F] run a DNS campaign, print summaries
//!                                                  (--journal: checkpoint to F and resume
//!                                                   from it after a crash)
//!                          [--metrics F]           export the campaign's metrics snapshot
//!                                                  as self-describing JSON lines to F
//! mcdn traffic [--paper]                           run border telemetry, print Figures 7/8
//! mcdn zones                                       dump the mapping zones as zone files
//! ```
//!
//! Everything is deterministic; re-running a command reproduces its output.

use mcdn_analysis::{fig2, fig3, fig4, fig5, fig7, fig8, table1};
use mcdn_scenario::{
    loads, params, run_global_dns, run_global_dns_observed, run_global_dns_resumable_with_observed,
    run_isp_dns, run_isp_dns_observed, run_isp_dns_resumable_with_observed, run_isp_traffic,
    CampaignRun, DnsCampaignResult, ResumeOptions, ScenarioConfig, World,
};
use mcdn_geo::{Locode, Registry, SimTime};

fn usage() -> ! {
    eprintln!(
        "usage: mcdn <resolve CITY [--at 'YYYY-MM-DD HH:MM'] | crawl | scan | \
campaign global|isp [--paper] [--journal FILE] [--metrics FILE] | traffic [--paper] | zones>"
    );
    std::process::exit(2);
}

fn parse_at(args: &[String]) -> SimTime {
    let default = SimTime::from_ymd_hms(2017, 9, 19, 18, 0, 0);
    let Some(i) = args.iter().position(|a| a == "--at") else { return default };
    let Some(spec) = args.get(i + 1) else { usage() };
    let parts: Vec<&str> = spec.split([' ', '-', ':']).collect();
    let num = |i: usize| parts.get(i).and_then(|p| p.parse::<u32>().ok());
    match (num(0), num(1), num(2), num(3), num(4)) {
        (Some(y), Some(m), Some(d), Some(h), Some(min)) => {
            SimTime::from_ymd_hms(y as i64, m, d, h, min, 0)
        }
        (Some(y), Some(m), Some(d), None, None) => SimTime::from_ymd(y as i64, m, d),
        _ => {
            eprintln!("cannot parse --at {spec:?} (want 'YYYY-MM-DD HH:MM')");
            std::process::exit(2);
        }
    }
}

fn cfg_from(args: &[String]) -> ScenarioConfig {
    if args.iter().any(|a| a == "--paper") {
        ScenarioConfig::paper()
    } else {
        ScenarioConfig::fast()
    }
}

fn cmd_resolve(args: &[String]) {
    let Some(city_arg) = args.first().filter(|a| !a.starts_with("--")) else { usage() };
    let city = Registry::cities()
        .iter()
        .find(|c| {
            c.name.eq_ignore_ascii_case(city_arg)
                || Locode::parse(city_arg).is_some_and(|l| Registry::canonicalize(l) == c.locode)
        })
        .unwrap_or_else(|| {
            eprintln!("unknown city {city_arg:?}; use a registry city name or UN/LOCODE");
            std::process::exit(2);
        });
    let now = parse_at(args);
    let world = World::build(&ScenarioConfig::fast());
    loads::update_loads(&world, now);
    let ctx = mcdn_dnssim::QueryContext {
        client_ip: "100.64.0.99".parse().expect("static ip"),
        locode: city.locode,
        coord: city.coord,
        continent: city.continent,
        now,
    };
    // Serve over the wire and show dig-style output.
    let query = mcdn_dnswire::Message::query(
        0x5EED,
        metacdn::names::entry(),
        mcdn_dnswire::RecordType::A,
    );
    let resp_bytes = mcdn_dnssim::serve(&world.ns, &query.encode().expect("encodes"), &ctx)
        .expect("namespace answers");
    let resp = mcdn_dnswire::Message::decode(&resp_bytes).expect("decodes");
    println!(
        "; resolving appldnld.apple.com as a client in {} at {now}\n",
        city.name
    );
    print!("{}", mcdn_dnswire::dig_format(&resp));
}

fn cmd_crawl() {
    let world = World::build(&ScenarioConfig::fast());
    let graph = fig2::fig2(&world);
    println!("{graph}");
    print!("{}", fig2::to_dot(&graph));
}

fn cmd_scan() {
    let world = World::build(&ScenarioConfig::fast());
    println!("{}", fig3::fig3(&world));
    println!("{}", table1::table1(&world));
    let (parsed, total) = table1::scheme_coverage(&world);
    println!("naming-scheme coverage: {parsed}/{total}");
}

/// `--journal FILE`, if present.
fn journal_arg(args: &[String]) -> Option<std::path::PathBuf> {
    path_arg(args, "--journal")
}

/// `--metrics FILE`, if present.
fn metrics_arg(args: &[String]) -> Option<std::path::PathBuf> {
    path_arg(args, "--metrics")
}

fn path_arg(args: &[String], flag: &str) -> Option<std::path::PathBuf> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(path) => Some(std::path::PathBuf::from(path)),
        None => usage(),
    }
}

/// `MCDN_KILL_AFTER_ROUND=N`: run N rounds, checkpoint, then die by
/// SIGKILL — the crash half of the CI crash→resume gate.
fn kill_after_round() -> Option<u64> {
    std::env::var("MCDN_KILL_AFTER_ROUND").ok()?.parse().ok()
}

/// Dies as abruptly as the OS allows: no destructors, no exit handlers.
/// SIGKILL through the `kill` utility when available, `abort` otherwise.
fn die_hard() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill").args(["-9", &pid]).status();
    std::process::abort();
}

/// Runs the selected campaign, journaled (`--journal`) or plain. A
/// journaled run that suspends under `MCDN_KILL_AFTER_ROUND` self-kills
/// after its checkpoint is durable and never returns.
fn run_selected_campaign(
    which: &str,
    world: &World,
    cfg: &ScenarioConfig,
    args: &[String],
) -> (DnsCampaignResult, mcdn_obs::MetricsSnapshot) {
    let Some(path) = journal_arg(args) else {
        return match which {
            "global" => run_global_dns_observed(world, cfg),
            _ => run_isp_dns_observed(world, cfg),
        };
    };
    let stop_after = kill_after_round();
    let opts = ResumeOptions { threads: 0, checkpoint_every: 1, stop_after_rounds: stop_after };
    let run = match which {
        "global" => run_global_dns_resumable_with_observed(world, cfg, &path, opts),
        _ => run_isp_dns_resumable_with_observed(world, cfg, &path, opts),
    };
    match run {
        Ok((CampaignRun::Complete(result), snapshot)) => (result, snapshot),
        Ok((CampaignRun::Suspended { rounds_done, total_rounds }, _)) => {
            eprintln!("suspending after {rounds_done}/{total_rounds} rounds (checkpoint durable)");
            die_hard();
        }
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_campaign(args: &[String]) {
    let which = args.first().map(String::as_str).unwrap_or("global");
    if !matches!(which, "global" | "isp") {
        usage();
    }
    let cfg = cfg_from(args);
    let world = World::build(&cfg);
    let (result, metrics) = run_selected_campaign(which, &world, &cfg, args);
    if let Some(path) = metrics_arg(args) {
        if let Err(e) = std::fs::write(&path, metrics.jsonl()) {
            eprintln!("cannot write metrics to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!("{} resolutions", result.resolutions);
    match which {
        "global" => {
            println!("{}", fig4::fig4_summary(&result, params::release()));
            println!("{}", fig4::fig4_eu_peak_breakdown(&result, params::release()));
        }
        _ => {
            let (rise, apple) = fig5::fig5_akamai_rise(&result);
            println!("Akamai unique IPs Sep 18 → 20: {rise:+.0}%  (Apple stability {apple:.2})");
        }
    }
}

fn cmd_traffic(args: &[String]) {
    let cfg = cfg_from(args);
    let world = World::build(&cfg);
    eprintln!("running DNS campaigns for the cross-correlation IP set…");
    let global = run_global_dns(&world, &cfg);
    let isp = run_isp_dns(&world, &cfg);
    let mut ip_classes = isp.ip_classes;
    ip_classes.extend(global.ip_classes);
    eprintln!("running border telemetry…");
    let traffic = run_isp_traffic(&world, &cfg);
    println!("{}", fig7::fig7_summary(&traffic, &ip_classes, params::release()));
    println!("{}", fig8::fig8_series(&traffic, &ip_classes, &world));
    println!("{}", fig8::fig8_d_link_saturation(&traffic, &world, cfg.traffic_tick));
}

fn cmd_zones() {
    let world = World::build(&ScenarioConfig::fast());
    for origin in ["apple.com", "akadns.net", "applimg.com", "edgesuite.net", "akamai.net", "llnwi.net", "llnwd.net"] {
        let name = mcdn_dnswire::Name::parse(origin).expect("static");
        if let Some(zone) = world.ns.authority_for(&name) {
            if zone.origin() == &name {
                println!("{}", zone.to_zonefile());
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("resolve") => cmd_resolve(&args[1..]),
        Some("crawl") => cmd_crawl(),
        Some("scan") => cmd_scan(),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("traffic") => cmd_traffic(&args[1..]),
        Some("zones") => cmd_zones(),
        _ => usage(),
    }
}
