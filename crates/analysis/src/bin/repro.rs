//! Regenerates every table and figure of the paper from the simulated
//! measurement campaigns and prints them.
//!
//! ```text
//! repro [--paper|--fast] [--csv-dir DIR]
//! ```
//!
//! `--fast` (default) runs the reduced configuration (~seconds);
//! `--paper` runs the full 800-probe / 5-minute / multi-month campaigns
//! (use a release build). `--csv-dir` additionally writes each table as CSV.

use mcdn_analysis::{fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, table1, via_inference, Table};
use mcdn_scenario::{params, run_global_dns, run_isp_dns, run_isp_traffic, ScenarioConfig, World};
use std::io::Write;

fn emit(table: &Table, csv_dir: Option<&str>, slug: &str) {
    println!("{table}");
    if let Some(dir) = csv_dir {
        let path = format!("{dir}/{slug}.csv");
        if let Err(e) =
            std::fs::File::create(&path).and_then(|mut f| f.write_all(table.to_csv().as_bytes()))
        {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv-dir")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    let cfg = if paper { ScenarioConfig::paper() } else { ScenarioConfig::fast() };
    eprintln!(
        "building world ({} mode: {} global probes, {} ISP probes)…",
        if paper { "paper" } else { "fast" },
        cfg.global_probes,
        cfg.isp_probes
    );
    let mut world = World::build(&cfg);
    let release = params::release();

    emit(&fig1::fig1(), csv_dir, "fig1_timeline");

    eprintln!("crawling mapping graph (fig 2)…");
    let graph = fig2::fig2(&world);
    emit(&graph, csv_dir, "fig2_mapping_graph");
    if let Some(dir) = csv_dir {
        let _ = std::fs::write(format!("{dir}/fig2.dot"), fig2::to_dot(&graph));
    }

    eprintln!("scanning Apple address space (fig 3, table 1)…");
    emit(&fig3::fig3(&world), csv_dir, "fig3_sites");
    emit(&table1::table1(&world), csv_dir, "table1_naming");
    let (parsed, total) = table1::scheme_coverage(&world);
    println!("naming-scheme coverage: {parsed}/{total} scanned names parse\n");

    // §3.3 companion: infer the cache hierarchy from download headers.
    let report = via_inference::infer_hierarchy(&mut world, 0, 800);
    emit(&via_inference::hierarchy_table(&report), csv_dir, "via_hierarchy");

    eprintln!("running global DNS campaign (fig 4)…");
    let global = run_global_dns(&world, &cfg);
    println!("global campaign: {} resolutions\n", global.resolutions);
    emit(&fig4::fig4_summary(&global, release), csv_dir, "fig4_summary");
    emit(&fig4::fig4_eu_peak_breakdown(&global, release), csv_dir, "fig4_eu_peak");
    if csv_dir.is_some() {
        emit(&fig4::fig4_series(&global), csv_dir, "fig4_series");
    }

    eprintln!("running in-ISP DNS campaign (fig 5)…");
    let isp = run_isp_dns(&world, &cfg);
    println!("ISP campaign: {} resolutions\n", isp.resolutions);
    let (rise, apple_ratio) = fig5::fig5_akamai_rise(&isp);
    println!(
        "Figure 5 headline: Akamai unique IPs Sep 18 → Sep 20: +{rise:.0}% \
(paper: +408%); Apple stability ratio {apple_ratio:.2} (paper: ~stable)\n"
    );
    if csv_dir.is_some() {
        emit(&fig5::fig5_series(&isp), csv_dir, "fig5_series");
    }

    emit(&fig6::fig6(&world), csv_dir, "fig6_classification");

    // Cross-correlation IP set: "all CDN server IPs observed in RIPE Atlas
    // DNS measurements" — the union of both campaigns' observations.
    let mut ip_classes = isp.ip_classes.clone();
    ip_classes.extend(global.ip_classes.iter().map(|(k, v)| (*k, *v)));

    eprintln!("running ISP border telemetry (figs 7, 8)…");
    let traffic = run_isp_traffic(&world, &cfg);
    println!(
        "telemetry: {} sampled flow records, {} SNMP samples, {} bytes dropped at saturated links\n",
        traffic.flows.len(),
        traffic.snmp.samples().count(),
        traffic.dropped_bytes
    );
    emit(&fig7::fig7_summary(&traffic, &ip_classes, release), csv_dir, "fig7_summary");
    if csv_dir.is_some() {
        emit(&fig7::fig7_series(&traffic, &ip_classes, release), csv_dir, "fig7_series");
    }
    emit(&fig8::fig8_series(&traffic, &ip_classes, &world), csv_dir, "fig8_overflow");
    emit(
        &fig8::fig8_d_link_saturation(&traffic, &world, cfg.traffic_tick),
        csv_dir,
        "fig8_d_links",
    );
    let d_share = fig8::d_peak_share(&traffic, &ip_classes, &world);
    println!(
        "Figure 8 headline: AS D peak overflow share {:.0}% (paper: >40%)",
        d_share * 100.0
    );

    if let Some(dir) = csv_dir {
        let _ = std::fs::write(format!("{dir}/plots.gnuplot"), gnuplot_script());
        eprintln!("wrote {dir}/plots.gnuplot — run `gnuplot plots.gnuplot` inside {dir} for PNGs");
    }
}

/// A gnuplot script rendering the exported CSVs into figure-like PNGs.
fn gnuplot_script() -> &'static str {
    r##"# Renders the repro CSVs into paper-figure-like PNGs.
# Usage: run inside the --csv-dir directory:  gnuplot plots.gnuplot
set datafile separator ","
set terminal pngcairo size 1100,500 font ",10"
set key outside right

# Figure 4: unique IPs, Europe panel.
set output "fig4_europe.png"
set title "Unique CDN cache IPs - Europe (cf. paper Fig. 4)"
set xlabel "hour bin (row index)"
set ylabel "unique IPs"
plot for [cdn in "Akamai Limelight Apple"] \
    "< awk -F, 'NR>1 && $2==\"Europe\" && $3==\"".cdn."\"' fig4_series.csv" \
    using 0:4 with lines lw 2 title cdn

# Figure 5: ISP view, daily unique IPs per CDN.
set output "fig5_isp.png"
set title "Unique CDN cache IPs - Eyeball ISP (cf. paper Fig. 5)"
plot for [cdn in "Akamai Limelight Apple"] \
    "< awk -F, 'NR>1 && $2==\"".cdn."\"' fig5_series.csv" \
    using 0:3 with lines lw 2 title cdn

# Figure 7: traffic ratio per CDN.
set output "fig7_ratio.png"
set title "Update traffic ratio vs pre-update peak (cf. paper Fig. 7)"
set ylabel "ratio %"
plot for [cdn in "Akamai Limelight Apple"] \
    "< awk -F, 'NR>1 && $2==\"".cdn."\"' fig7_series.csv" \
    using 0:3 with lines lw 2 title cdn

# Figure 8: overflow share by handover AS.
set output "fig8_overflow.png"
set title "Limelight overflow share by handover AS (cf. paper Fig. 8)"
set ylabel "share %"
set style data histograms
set style histogram rowstacked
set style fill solid 0.8
plot for [as in "A B C D other"] \
    "< awk -F, 'NR>1 && $2==\"".as."\"' fig8_overflow.csv" \
    using 3:xtic(1) title "AS ".as
"##
}
