//! Cache-location inference from traceroute RTTs.
//!
//! The paper's Figure 3 places caches geographically using the naming
//! scheme, "consistent with the UN/LOCODE scheme". Traceroute RTTs provide
//! the independent confirmation: a cache should be closest (RTT-wise) to
//! probes in its own city. This module runs that cross-check — infer each
//! cache's location as the city of the minimum-RTT probe, then compare
//! against the naming-scheme ground truth.

use crate::table::Table;
use mcdn_atlas::ProbeSpec;
use mcdn_geo::Registry;
use mcdn_scenario::tracecampaign::run_traceroutes;
use mcdn_scenario::World;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Result of locating one cache address.
#[derive(Debug, Clone, PartialEq)]
pub struct LocatedCache {
    /// The cache address.
    pub ip: Ipv4Addr,
    /// City inferred from the minimum-RTT probe.
    pub inferred_city: String,
    /// City from the naming scheme (ground truth), if the address has one.
    pub named_city: Option<String>,
    /// The minimum RTT observed, ms.
    pub min_rtt_ms: f64,
}

/// Locates each target by minimum RTT across a geographically diverse
/// probe set.
pub fn locate_caches(
    world: &World,
    probes: &[ProbeSpec],
    targets: &[Ipv4Addr],
) -> Vec<LocatedCache> {
    let campaign = run_traceroutes(world, probes, targets);
    // Per target: the probe with the lowest final-hop RTT.
    let mut best: HashMap<Ipv4Addr, (usize, f64)> = HashMap::new();
    for (probe_i, target, tr) in &campaign.traces {
        if let Some(last) = tr.hops.last() {
            let e = best.entry(*target).or_insert((*probe_i, f64::INFINITY));
            if last.rtt_ms < e.1 {
                *e = (*probe_i, last.rtt_ms);
            }
        }
    }
    targets
        .iter()
        .filter_map(|ip| {
            let (probe_i, rtt) = best.get(ip)?;
            let named_city = world.apple.ptr_lookup(*ip).and_then(|n| {
                Registry::by_locode(Registry::canonicalize(n.locode)).map(|c| c.name.to_string())
            });
            Some(LocatedCache {
                ip: *ip,
                inferred_city: probes[*probe_i].city.name.to_string(),
                named_city,
                min_rtt_ms: *rtt,
            })
        })
        .collect()
}

/// How often the RTT inference agrees with the naming scheme, over one
/// Apple vip per site, probed from one probe per distinct probe city.
pub fn naming_vs_rtt_agreement(world: &World, probes: &[ProbeSpec]) -> (usize, usize) {
    // One representative probe per city.
    let mut by_city: HashMap<&str, ProbeSpec> = HashMap::new();
    for p in probes {
        by_city.entry(p.city.name).or_insert(*p);
    }
    let probe_set: Vec<ProbeSpec> = by_city.into_values().collect();
    let probe_cities: std::collections::HashSet<&str> =
        probe_set.iter().map(|p| p.city.name).collect();

    // One vip per site whose city hosts a probe (the inference can only
    // name cities it has a vantage point in).
    let targets: Vec<Ipv4Addr> = world
        .apple
        .sites()
        .iter()
        .filter(|s| {
            Registry::by_locode(Registry::canonicalize(s.locode))
                .map(|c| probe_cities.contains(c.name))
                .unwrap_or(false)
        })
        .filter_map(|s| s.vip_addrs().first().copied())
        .collect();

    let located = locate_caches(world, &probe_set, &targets);
    let agree = located
        .iter()
        .filter(|l| l.named_city.as_deref() == Some(l.inferred_city.as_str()))
        .count();
    (agree, located.len())
}

/// The cross-check as a table.
pub fn location_table(world: &World, probes: &[ProbeSpec], targets: &[Ipv4Addr]) -> Table {
    let mut t = Table::new(
        "Cache location: naming scheme vs minimum-RTT inference",
        &["cache", "named city", "RTT-inferred city", "min RTT (ms)", "agree"],
    );
    for l in locate_caches(world, probes, targets) {
        let named = l.named_city.clone().unwrap_or_else(|| "—".into());
        let agree = l.named_city.as_deref() == Some(l.inferred_city.as_str());
        t.push(vec![
            l.ip.to_string(),
            named,
            l.inferred_city.clone(),
            format!("{:.1}", l.min_rtt_ms),
            agree.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_scenario::ScenarioConfig;

    #[test]
    fn rtt_inference_agrees_with_naming_scheme() {
        let world = World::build(&ScenarioConfig::fast());
        let (agree, total) = naming_vs_rtt_agreement(&world, &world.global_probe_specs);
        assert!(total >= 10, "enough co-located sites to test ({total})");
        assert!(
            agree * 10 >= total * 8,
            "≥80% agreement expected, got {agree}/{total}"
        );
    }

    #[test]
    fn table_renders_with_rtts() {
        let world = World::build(&ScenarioConfig::fast());
        let probes: Vec<_> = world.global_probe_specs.iter().take(20).cloned().collect();
        let targets = vec![world.apple_isp_vips[0]];
        let t = location_table(&world, &probes, &targets);
        assert_eq!(t.rows.len(), 1);
        let rtt: f64 = t.rows[0][3].parse().unwrap();
        assert!(rtt > 0.0 && rtt < 500.0);
    }
}
