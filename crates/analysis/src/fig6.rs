//! Figure 6: the offload/overflow taxonomy, as a worked classification.
//!
//! Figure 6 is an illustration; its reproducible content is the §5.1
//! classification rule, which this module demonstrates on one flow per
//! quadrant drawn from the live topology.

use crate::table::Table;
use mcdn_isp::classify_flow;
use mcdn_netsim::Router;
use mcdn_scenario::{params, World};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Classifies a representative server address per quadrant and tabulates
/// source AS, handover AS, and the offload/overflow verdicts.
pub fn fig6(world: &World) -> Table {
    let thirds: HashSet<_> = [
        params::AKAMAI_AS,
        params::LIMELIGHT_AS,
        params::LL_CACHE_A_AS,
        params::LL_CACHE_B_AS,
        params::LL_CACHE_C_AS,
        params::LL_SURGE_D_AS,
        params::AKAMAI_OFFNET_AS,
    ]
    .into_iter()
    .collect();
    let mut router = Router::new();
    let mut t = Table::new(
        "Figure 6 — offload and overflow classification (worked examples)",
        &["server", "source AS", "handover AS", "offload", "overflow"],
    );
    let samples: [(&str, Ipv4Addr); 4] = [
        ("Apple cache, direct peering", "17.253.1.1".parse().expect("ip")),
        ("Akamai cache, direct peering", "23.0.0.1".parse().expect("ip")),
        ("Apple traffic via transit", "17.200.1.1".parse().expect("ip")),
        ("Limelight cache behind AS D", "69.28.64.1".parse().expect("ip")),
    ];
    for (label, ip) in samples {
        let Some(src) = world.topo.origin_of(ip) else { continue };
        let Some(path) = router.path(&world.topo, src, params::EYEBALL_AS) else { continue };
        let handover = Router::handover(&path).unwrap_or(src);
        // The "Apple via transit" example models the dedicated China pool
        // whose route to this ISP would cross a transit; in this topology
        // Apple peers directly, so force the transit case explicitly for
        // the illustration.
        let handover = if label.contains("via transit") { params::TRANSIT_A } else { handover };
        let class = classify_flow(src, handover, &thirds);
        t.push(vec![
            label.to_string(),
            world.topo.as_info(src).map(|a| a.name.clone()).unwrap_or_default(),
            world.topo.as_info(handover).map(|a| a.name.clone()).unwrap_or_default(),
            class.offload.to_string(),
            class.overflow.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_scenario::ScenarioConfig;

    #[test]
    fn quadrants_are_covered() {
        let world = World::build(&ScenarioConfig::fast());
        let t = fig6(&world);
        assert_eq!(t.rows.len(), 4);
        // Direct Apple: neither.
        assert_eq!(t.rows[0][3], "false");
        assert_eq!(t.rows[0][4], "false");
        // Direct Akamai: offload only.
        assert_eq!(t.rows[1][3], "true");
        assert_eq!(t.rows[1][4], "false");
        // Apple via transit: overflow only.
        assert_eq!(t.rows[2][3], "false");
        assert_eq!(t.rows[2][4], "true");
        // LL behind AS D: both.
        assert_eq!(t.rows[3][3], "true");
        assert_eq!(t.rows[3][4], "true");
    }
}
