//! Figure 8: overflow by handover AS during the iOS update.
//!
//! §5.4: take Limelight-delivered traffic, keep the *overflow* part (source
//! AS ≠ handover AS), and show each handover AS's daily share — plus the
//! saturation state of the AS-D links that the event lights up.

use crate::table::Table;
use mcdn_geo::{Duration, SimTime};
use mcdn_isp::estimate::scale_by_snmp_with_coverage;
use mcdn_scenario::{params, CdnClass, TrafficResult, World};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Handover group labels of the figure.
fn handover_label(world: &World, handover: mcdn_netsim::AsId) -> &'static str {
    match handover {
        x if x == params::TRANSIT_A => "A",
        x if x == params::TRANSIT_B => "B",
        x if x == params::TRANSIT_C => "C",
        x if x == params::TRANSIT_D => "D",
        _ => {
            // ~40 smaller handover ASes are grouped as "other".
            let _ = world;
            "other"
        }
    }
}

/// Daily overflow bytes by handover label, for Limelight-attributed flows.
pub fn overflow_by_handover(
    traffic: &TrafficResult,
    ip_classes: &HashMap<Ipv4Addr, CdnClass>,
    world: &World,
) -> BTreeMap<(SimTime, &'static str), f64> {
    // The coverage-aware scaler degrades gracefully when SNMP polls
    // were missed (gapped cells fall back to sampling-rate inversion
    // instead of silently reading zero); with complete SNMP coverage it
    // is identical to the plain SNMP scaler.
    let (scaled, _coverage) =
        scale_by_snmp_with_coverage(&traffic.flows, &traffic.snmp, traffic.sampling);
    let mut out: BTreeMap<(SimTime, &'static str), f64> = BTreeMap::new();
    for v in scaled {
        let Some(class) = ip_classes.get(&v.src) else { continue };
        if class.cdn() != CdnClass::Limelight {
            continue;
        }
        let Some(source_as) = world.topo.origin_of(v.src) else { continue };
        let handover = world.topo.link(v.link).other(params::EYEBALL_AS);
        if source_as == handover {
            continue; // direct traffic, not overflow
        }
        *out.entry((v.bin.floor_day(), handover_label(world, handover))).or_insert(0.0) +=
            v.bytes;
    }
    out
}

/// The Figure 8 series: per day, each handover AS's share of Limelight
/// overflow traffic.
pub fn fig8_series(
    traffic: &TrafficResult,
    ip_classes: &HashMap<Ipv4Addr, CdnClass>,
    world: &World,
) -> Table {
    let data = overflow_by_handover(traffic, ip_classes, world);
    let mut day_totals: BTreeMap<SimTime, f64> = BTreeMap::new();
    for ((day, _), bytes) in &data {
        *day_totals.entry(*day).or_insert(0.0) += bytes;
    }
    let mut t = Table::new(
        "Figure 8 — Overflow by handover AS (Limelight traffic)",
        &["day", "handover AS", "share %"],
    );
    for ((day, label), bytes) in &data {
        let total = day_totals[day];
        if total > 0.0 {
            t.push(vec![
                day.to_string(),
                label.to_string(),
                format!("{:.0}", bytes / total * 100.0),
            ]);
        }
    }
    t
}

/// Saturation report for the ISP↔AS-D links over the event window. The
/// paper observes two of the four become *entirely saturated at peak
/// times*; with fill-in-order load placement our first links saturate for
/// many polls while the last fill only at the single demand peak, so the
/// table reports both the peak rate and how long each link ran saturated.
pub fn fig8_d_link_saturation(traffic: &TrafficResult, world: &World, tick: Duration) -> Table {
    let mut t = Table::new(
        "Figure 8 companion — AS D link saturation",
        &["link", "capacity (Gbps)", "peak rate (Gbps)", "peak util %", "polls ≥99% util"],
    );
    for (i, link_id) in world.isp_d_links.iter().enumerate() {
        let cap = world.topo.link(*link_id).capacity_bps;
        let cap_bytes = cap * tick.as_secs() as f64 / 8.0;
        let mut peak_bytes = 0u64;
        let mut saturated_polls = 0u32;
        for (_, l, b) in traffic.snmp.samples() {
            if l == *link_id {
                peak_bytes = peak_bytes.max(b);
                if b as f64 >= cap_bytes * 0.99 {
                    saturated_polls += 1;
                }
            }
        }
        let peak_bps = peak_bytes as f64 * 8.0 / tick.as_secs() as f64;
        t.push(vec![
            format!("ISP–D #{}", i + 1),
            format!("{:.0}", cap / 1e9),
            format!("{:.1}", peak_bps / 1e9),
            format!("{:.0}", peak_bps / cap * 100.0),
            saturated_polls.to_string(),
        ]);
    }
    t
}

/// The share AS D reaches on its biggest day (paper: "more than 40 %").
pub fn d_peak_share(
    traffic: &TrafficResult,
    ip_classes: &HashMap<Ipv4Addr, CdnClass>,
    world: &World,
) -> f64 {
    let data = overflow_by_handover(traffic, ip_classes, world);
    let mut best = 0.0f64;
    let mut day_totals: BTreeMap<SimTime, f64> = BTreeMap::new();
    for ((day, _), bytes) in &data {
        *day_totals.entry(*day).or_insert(0.0) += bytes;
    }
    for ((day, label), bytes) in &data {
        if *label == "D" && day_totals[day] > 0.0 {
            best = best.max(bytes / day_totals[day]);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_isp::FlowRecord;
    use mcdn_scenario::ScenarioConfig;
    use std::collections::HashMap;

    /// Hand-crafted flows over the real topology: one direct Limelight flow
    /// (not overflow), one via a regional cache behind AS A, one via the
    /// surge host behind AS D.
    fn synthetic(world: &World) -> (TrafficResult, HashMap<Ipv4Addr, CdnClass>) {
        let day = SimTime::from_ymd(2017, 9, 20);
        let mut snmp = mcdn_isp::SnmpCounters::new();
        let mut flows = Vec::new();
        let mut ip_classes = HashMap::new();
        let link_to = |asn| {
            world
                .topo
                .links_between(asn, params::EYEBALL_AS)
                .first()
                .map(|l| l.id)
                .expect("link")
        };
        for (ip, class, handover, bytes) in [
            ("68.232.0.9", CdnClass::Limelight, params::LIMELIGHT_AS, 10_000u32),
            ("69.28.0.2", CdnClass::LimelightOtherAs, params::TRANSIT_A, 3_000),
            ("69.28.64.2", CdnClass::LimelightOtherAs, params::TRANSIT_D, 7_000),
            ("23.0.0.9", CdnClass::Akamai, params::AKAMAI_AS, 50_000),
        ] {
            let src: Ipv4Addr = ip.parse().unwrap();
            let link = link_to(handover);
            snmp.account(link, bytes as u64);
            ip_classes.insert(src, class);
            flows.push((
                day,
                link,
                FlowRecord {
                    src,
                    dst: "84.17.0.1".parse().unwrap(),
                    input_if: (link.0 & 0xFFFF) as u16,
                    packets: 1,
                    bytes,
                    src_as: 0,
                    dst_as: 3320,
                },
            ));
        }
        snmp.poll(day);
        (TrafficResult { flows, snmp, dropped_bytes: 0, sampling: 1, export_losses: 0, polls_missed: 0 }, ip_classes)
    }

    #[test]
    fn only_limelight_overflow_is_counted() {
        let world = World::build(&ScenarioConfig::fast());
        let (traffic, ip_classes) = synthetic(&world);
        let data = overflow_by_handover(&traffic, &ip_classes, &world);
        let day = SimTime::from_ymd(2017, 9, 20);
        // Direct LL flow and the Akamai flow are excluded; A gets 3000,
        // D gets 7000.
        assert_eq!(data.get(&(day, "A")).copied(), Some(3_000.0));
        assert_eq!(data.get(&(day, "D")).copied(), Some(7_000.0));
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn shares_sum_to_one_hundred() {
        let world = World::build(&ScenarioConfig::fast());
        let (traffic, ip_classes) = synthetic(&world);
        let t = fig8_series(&traffic, &ip_classes, &world);
        let total: f64 = t.rows.iter().map(|r| r[2].parse::<f64>().unwrap()).sum();
        assert!((total - 100.0).abs() < 1.5, "rounding-tolerant sum, got {total}");
        assert!((d_peak_share(&traffic, &ip_classes, &world) - 0.7).abs() < 1e-9);
    }
}
