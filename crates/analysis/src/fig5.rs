//! Figure 5: unique CDN cache IPs seen from inside the Eyeball ISP.

use crate::table::Table;
use mcdn_geo::SimTime;
use mcdn_scenario::{CdnClass, DnsCampaignResult};

/// The Figure 5 series: daily unique-IP counts per CDN class from the
/// in-ISP probe fleet.
pub fn fig5_series(result: &DnsCampaignResult) -> Table {
    let mut t = Table::new(
        "Figure 5 — Unique CDN cache IPs, European Eyeball ISP measurement",
        &["day", "cdn", "unique IPs"],
    );
    for (bin, _cont, class, count) in result.unique_ips.series() {
        t.push(vec![bin.to_string(), class.to_string(), count.to_string()]);
    }
    t
}

/// The paper's headline statistic: Akamai's unique-IP rise from Sep 18 to
/// Sep 20 (reported +408 %), alongside Apple's stability over the same
/// days. Returns `(akamai_rise_percent, apple_ratio)`.
pub fn fig5_akamai_rise(result: &DnsCampaignResult) -> (f64, f64) {
    let d18 = SimTime::from_ymd(2017, 9, 18);
    let d20 = SimTime::from_ymd(2017, 9, 20);
    let count = |day: SimTime, class: CdnClass| {
        result
            .unique_ips
            .count(day, mcdn_geo::Continent::Europe, class)
    };
    // "Akamai CDN IPs" in the figure text counts Akamai incl. other-AS.
    let ak18 = count(d18, CdnClass::Akamai) + count(d18, CdnClass::AkamaiOtherAs);
    let ak20 = count(d20, CdnClass::Akamai) + count(d20, CdnClass::AkamaiOtherAs);
    let ap18 = count(d18, CdnClass::Apple).max(1);
    let ap20 = count(d20, CdnClass::Apple);
    let rise = if ak18 > 0 { (ak20 as f64 / ak18 as f64 - 1.0) * 100.0 } else { 0.0 };
    (rise, ap20 as f64 / ap18 as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_atlas::UniqueIpAggregator;
    use mcdn_geo::{Continent, Duration};
    use mcdn_scenario::DnsCampaignResult;
    use std::net::Ipv4Addr;

    fn result_with(ak18: u32, ak20: u32, other18: u32, ap18: u32, ap20: u32) -> DnsCampaignResult {
        let mut agg = UniqueIpAggregator::new(Duration::days(1));
        let d18 = SimTime::from_ymd(2017, 9, 18);
        let d20 = SimTime::from_ymd(2017, 9, 20);
        for i in 0..ak18 {
            agg.record(d18, Continent::Europe, CdnClass::Akamai, Ipv4Addr::from(0x1700_0000 + i));
        }
        for i in 0..ak20 {
            agg.record(d20, Continent::Europe, CdnClass::Akamai, Ipv4Addr::from(0x1700_0000 + i));
        }
        for i in 0..other18 {
            agg.record(d20, Continent::Europe, CdnClass::AkamaiOtherAs, Ipv4Addr::from(0x6006_0000 + i));
        }
        for i in 0..ap18 {
            agg.record(d18, Continent::Europe, CdnClass::Apple, Ipv4Addr::from(0x11FD_0000 + i));
        }
        for i in 0..ap20 {
            agg.record(d20, Continent::Europe, CdnClass::Apple, Ipv4Addr::from(0x11FD_0000 + i));
        }
        DnsCampaignResult {
            unique_ips: agg,
            ip_classes: Default::default(),
            resolutions: 0,
            attempts: 0,
            retry_exhausted: 0,
            memo_lookups: 0,
            memo_hits: 0,
            reused_resolutions: 0,
        }
    }

    #[test]
    fn akamai_rise_includes_other_as_caches() {
        // 50 on-net → 200 on-net + 54 off-net = 254 total: +408%.
        let result = result_with(50, 200, 54, 40, 44);
        let (rise, apple_ratio) = fig5_akamai_rise(&result);
        assert!((rise - 408.0).abs() < 0.5, "got {rise}");
        assert!((apple_ratio - 1.1).abs() < 1e-9);
    }

    #[test]
    fn series_renders_rows() {
        let result = result_with(5, 10, 0, 3, 3);
        let t = fig5_series(&result);
        assert!(t.rows.len() >= 4);
        assert_eq!(t.headers.len(), 3);
    }

    #[test]
    fn zero_baseline_is_handled() {
        let result = result_with(0, 10, 0, 1, 1);
        let (rise, _) = fig5_akamai_rise(&result);
        assert_eq!(rise, 0.0, "no division by zero");
    }
}
