//! Measurement-coverage annotations for fault-injected campaigns.
//!
//! When the measurement plane runs under a fault profile, every figure is
//! computed from partial data: some probe rounds failed even after
//! retries, some NetFlow exports were lost, some SNMP bins were never
//! polled. These tables make that loss explicit so a reader of the
//! regenerated figures knows how much observation backs them — the
//! simulated analogue of a measurement paper's data-completeness
//! paragraph.

use crate::table::Table;
use mcdn_faults::coverage::interpolate_gaps;
use mcdn_geo::{Duration, SimTime};
use mcdn_isp::estimate::scale_by_snmp_with_coverage;
use mcdn_netsim::LinkId;
use mcdn_scenario::{DnsCampaignResult, TrafficResult};

/// Coverage summary of one DNS campaign: measurements, retries, and the
/// fraction that produced usable resolutions.
pub fn dns_campaign_coverage(result: &DnsCampaignResult) -> Table {
    let mut t = Table::new(
        "DNS campaign coverage",
        &["measurements", "attempts", "retries", "exhausted", "success %"],
    );
    let retries = result.attempts.saturating_sub(result.resolutions);
    t.push(vec![
        result.resolutions.to_string(),
        result.attempts.to_string(),
        retries.to_string(),
        result.retry_exhausted.to_string(),
        format!("{:.1}", result.success_fraction() * 100.0),
    ]);
    t
}

/// Coverage summary of the border telemetry: NetFlow export losses, SNMP
/// poll gaps, and how many scaling cells had real SNMP backing.
pub fn telemetry_coverage(traffic: &TrafficResult) -> Table {
    let (_, scaling) =
        scale_by_snmp_with_coverage(&traffic.flows, &traffic.snmp, traffic.sampling);
    let mut t = Table::new(
        "Border telemetry coverage",
        &[
            "flow records",
            "exports lost",
            "SNMP polls missed",
            "cells SNMP-scaled",
            "cells gapped",
            "SNMP coverage %",
        ],
    );
    t.push(vec![
        traffic.flows.len().to_string(),
        traffic.export_losses.to_string(),
        traffic.polls_missed.to_string(),
        scaling.covered_cells.to_string(),
        scaling.gapped_cells.to_string(),
        format!("{:.1}", scaling.fraction() * 100.0),
    ]);
    t
}

/// One link's SNMP byte series on the regular poll grid over `[from, to)`,
/// with missed bins linearly interpolated and flagged — the gap-tolerant
/// input for utilization plots. Bins are `step`-spaced (pass the traffic
/// tick).
pub fn link_series_with_gaps(
    traffic: &TrafficResult,
    link: LinkId,
    from: SimTime,
    to: SimTime,
    step: Duration,
) -> Table {
    let observed: Vec<(SimTime, f64)> = traffic
        .snmp
        .samples()
        .filter(|(_, l, _)| *l == link)
        .filter(|(t, _, _)| *t >= from && *t < to)
        .map(|(t, _, b)| (t, b as f64))
        .collect();
    let (bins, cov) = interpolate_gaps(&observed, from, to, step);
    let mut t = Table::new(
        format!(
            "Link {} SNMP series ({} of {} bins observed)",
            link.0,
            cov.observed,
            cov.observed + cov.missing
        ),
        &["bin", "bytes", "interpolated"],
    );
    for b in bins {
        t.push(vec![
            b.t.to_string(),
            format!("{:.0}", b.value),
            if b.interpolated { "yes".into() } else { "no".into() },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_isp::SnmpCounters;
    use mcdn_scenario::{run_global_dns, ScenarioConfig, World};

    fn traffic_with_gap() -> TrafficResult {
        let t0 = SimTime::from_ymd(2017, 9, 19);
        let step = Duration::mins(5);
        let mut snmp = SnmpCounters::new();
        snmp.account(LinkId(1), 100);
        snmp.poll(t0);
        snmp.account(LinkId(1), 100);
        snmp.poll_filtered(t0 + step, |_| false); // the missed cycle
        snmp.account(LinkId(1), 100);
        snmp.poll(t0 + step + step);
        TrafficResult {
            flows: Vec::new(),
            snmp,
            dropped_bytes: 0,
            sampling: 1000,
            export_losses: 3,
            polls_missed: 1,
        }
    }

    #[test]
    fn telemetry_table_reports_losses_and_gaps() {
        let t = telemetry_coverage(&traffic_with_gap());
        assert_eq!(t.rows[0][1], "3");
        assert_eq!(t.rows[0][2], "1");
        // No flows → no scaling cells → full coverage by convention.
        assert_eq!(t.rows[0][5], "100.0");
    }

    #[test]
    fn link_series_flags_the_missed_bin() {
        let t0 = SimTime::from_ymd(2017, 9, 19);
        let step = Duration::mins(5);
        let table = link_series_with_gaps(
            &traffic_with_gap(),
            LinkId(1),
            t0,
            t0 + Duration::mins(15),
            step,
        );
        assert_eq!(table.rows.len(), 3);
        let flags: Vec<&str> = table.rows.iter().map(|r| r[2].as_str()).collect();
        assert_eq!(flags, vec!["no", "yes", "no"]);
        // The gap bin interpolates between 100 and 200 bytes of delta.
        let mid: f64 = table.rows[1][1].parse().unwrap();
        assert!((mid - 150.0).abs() < 1e-9, "got {mid}");
    }

    #[test]
    fn dns_coverage_reports_clean_campaign_as_full() {
        let mut cfg = ScenarioConfig::fast();
        cfg.global_probes = 20;
        cfg.global_dns_interval = Duration::hours(6);
        cfg.global_start = SimTime::from_ymd(2017, 9, 19);
        cfg.global_end = SimTime::from_ymd(2017, 9, 20);
        let world = World::build(&cfg);
        let result = run_global_dns(&world, &cfg);
        let t = dns_campaign_coverage(&result);
        assert_eq!(t.rows[0][0], t.rows[0][1], "no faults → attempts == measurements");
        assert_eq!(t.rows[0][2], "0");
        assert_eq!(t.rows[0][4], "100.0");
    }
}
