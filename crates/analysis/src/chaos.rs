//! Chaos-sweep summary: per-scenario availability and offload deltas.
//!
//! The paper never breaks the infrastructure — it measures a system that
//! stayed up. The chaos sweep asks the counterfactual: *how much* of the
//! event would the Meta-CDN have served with sites dark, capacity browned
//! out, or a third-party control plane dead, and how far does the mapping
//! shift traffic to compensate? This module condenses each scenario's
//! per-tick audit trail into one comparable row against the clean
//! baseline.

use crate::table::Table;
use mcdn_scenario::ChaosRunResult;
use metacdn::CdnKind;

/// One scenario's run, summarized against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSummary {
    /// Scenario name.
    pub scenario: &'static str,
    /// Fraction of offered demand served.
    pub availability: f64,
    /// Availability minus the baseline's.
    pub availability_delta: f64,
    /// Fraction of served traffic carried by third-party CDNs.
    pub offload: f64,
    /// Offload minus the baseline's.
    pub offload_delta: f64,
    /// Fraction of DNS liveness probes that resolved.
    pub dns_success: f64,
    /// Health eject/restore transitions over the run.
    pub transitions: u64,
}

/// Summarizes a sweep. The first result is treated as the baseline (the
/// convention of [`mcdn_scenario::standard_grid`]); deltas are relative
/// to it, so the baseline row's deltas are zero by construction.
pub fn summarize_sweep(results: &[ChaosRunResult]) -> Vec<ChaosSummary> {
    let base_avail = results.first().map_or(1.0, ChaosRunResult::availability);
    let base_offload = results.first().map_or(0.0, ChaosRunResult::offload_fraction);
    results
        .iter()
        .map(|r| {
            let availability = r.availability();
            let offload = r.offload_fraction();
            ChaosSummary {
                scenario: r.scenario,
                availability,
                availability_delta: availability - base_avail,
                offload,
                offload_delta: offload - base_offload,
                dns_success: r.dns_success(),
                transitions: r.total_transitions(),
            }
        })
        .collect()
}

/// Renders the sweep summary as the chaos table (one row per scenario).
pub fn chaos_table(results: &[ChaosRunResult]) -> Table {
    let mut t = Table::new(
        "Chaos sweep — availability and offload under infrastructure failures",
        &[
            "scenario",
            "availability",
            "Δ avail",
            "offload",
            "Δ offload",
            "dns ok",
            "health transitions",
        ],
    );
    for s in summarize_sweep(results) {
        t.push(vec![
            s.scenario.to_string(),
            format!("{:.4}", s.availability),
            format!("{:+.4}", s.availability_delta),
            format!("{:.4}", s.offload),
            format!("{:+.4}", s.offload_delta),
            format!("{:.4}", s.dns_success),
            s.transitions.to_string(),
        ]);
    }
    t
}

/// Mean Limelight share of served traffic in one run — the quantity the
/// LL-LB-kill scenario collapses and the spill test tracks.
pub fn limelight_served_fraction(result: &ChaosRunResult) -> f64 {
    let ll = result.mean_served_bps(CdnKind::Limelight);
    let total: f64 = CdnKind::ALL.into_iter().map(|k| result.mean_served_bps(k)).sum();
    if total <= 0.0 {
        0.0
    } else {
        ll / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_geo::Duration;
    use mcdn_scenario::{run_chaos, standard_grid, ScenarioConfig};

    fn cfg() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::fast();
        let release = mcdn_scenario::params::release();
        cfg.traffic_start = release - Duration::hours(3);
        cfg.traffic_end = release + Duration::hours(6);
        cfg
    }

    #[test]
    fn baseline_row_has_zero_deltas() {
        let grid = standard_grid(3);
        let results = vec![run_chaos(&cfg(), &grid[0]), run_chaos(&cfg(), &grid[4])];
        let summaries = summarize_sweep(&results);
        assert_eq!(summaries[0].scenario, "baseline");
        assert_eq!(summaries[0].availability_delta, 0.0);
        assert_eq!(summaries[0].offload_delta, 0.0);
        let t = chaos_table(&results);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.cell(0, 0), Some("baseline"));
        // apple-degraded sheds Apple capacity → offload must not fall.
        assert!(summaries[1].offload_delta >= 0.0, "degrading Apple cannot reduce offload");
    }
}
