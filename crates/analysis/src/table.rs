//! Plain-text result tables.

use std::fmt;

/// A titled table of string cells — the output form of every figure
/// regeneration (printable, CSV-exportable, assertable in tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Title shown above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a row of displayable values.
    pub fn push_display(&mut self, cells: &[&dyn fmt::Display]) {
        self.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// A cell value, if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }

    /// Finds the first row whose `col`-th cell equals `value`.
    pub fn find_row(&self, col: usize, value: &str) -> Option<&Vec<String>> {
        self.rows.iter().find(|r| r.get(col).map(String::as_str) == Some(value))
    }

    /// Renders CSV (headers + rows, comma-separated, quotes around cells
    /// containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths from headers and cells.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["cdn", "ips"]);
        t.push(vec!["Akamai".into(), "55".into()]);
        t.push(vec!["Limelight, Inc".into(), "45".into()]);
        t
    }

    #[test]
    fn display_is_aligned() {
        let text = sample().to_string();
        assert!(text.starts_with("== Demo =="));
        assert!(text.contains("cdn"));
        assert!(text.contains("Akamai"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"Limelight, Inc\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn lookup_helpers() {
        let t = sample();
        assert_eq!(t.cell(0, 1), Some("55"));
        assert!(t.find_row(0, "Akamai").is_some());
        assert!(t.find_row(0, "Level3").is_none());
    }
}
