//! Figure 2: the request-mapping DNS graph, crawled from vantage points.
//!
//! The paper assembled Figure 2 by resolving `appldnld.apple.com` from many
//! vantage points and unioning the CNAME edges. This module does exactly
//! that against the simulated namespace: every vantage VM crawls repeatedly
//! (cold-cache, like the AWS measurements), before and after the release,
//! and the observed edges are tabulated with their TTLs and an event flag.

use crate::table::Table;
use mcdn_geo::{Duration, SimTime};
use mcdn_scenario::{loads, World};
use metacdn::names;
use std::collections::BTreeMap;

/// Crawl rounds per vantage point per phase. Enough that every
/// probabilistic branch (Apple/third-party, a/b GSLB, per-region LB) is
/// taken with overwhelming probability.
const ROUNDS: u32 = 120;

/// Crawls the mapping graph around the release and tabulates every CNAME
/// edge: steady-state edges plus the event-only `a1015` path.
pub fn fig2(world: &World) -> Table {
    let release = SimTime::from_ymd_hms(2017, 9, 19, 17, 0, 0);
    let quiet = release - Duration::days(3);
    let hot = release + Duration::hours(8);

    // Union of edges per phase.
    let mut edges: BTreeMap<(String, String, u32), (bool, bool)> = BTreeMap::new();
    for (phase_start, is_event) in [(quiet, false), (hot, true)] {
        // Walk the controller up to the phase instant so load history (and
        // with it the a1015 activation lag) is current.
        if is_event {
            let mut t = release;
            while t <= phase_start {
                loads::update_loads(world, t);
                t += Duration::mins(30);
            }
        } else {
            loads::update_loads(world, phase_start);
        }
        for vm in &world.vms {
            let crawl = vm.crawl_mapping(&world.ns, &names::entry(), phase_start, ROUNDS, 60);
            for edge in crawl.edges {
                let entry = edges.entry(edge).or_insert((false, false));
                if is_event {
                    entry.1 = true;
                } else {
                    entry.0 = true;
                }
            }
        }
    }

    let mut t = Table::new(
        "Figure 2 — Request mapping DNS graph (CNAME edges)",
        &["from", "to", "ttl", "phase"],
    );
    for ((from, to, ttl), (in_quiet, in_event)) in edges {
        let phase = match (in_quiet, in_event) {
            (true, true) => "steady",
            (false, true) => "event-only",
            (true, false) => "quiet-only",
            (false, false) => unreachable!("edge recorded without phase"),
        };
        t.push(vec![from, to, ttl.to_string(), phase.to_string()]);
    }
    t
}

/// Renders the crawled graph as Graphviz DOT — the visual form of
/// Figure 2. Event-only edges are drawn dashed/orange, like the paper's
/// checker pattern.
pub fn to_dot(crawled: &Table) -> String {
    let mut out = String::from("digraph metacdn_mapping {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for row in &crawled.rows {
        let style = if row[3] == "event-only" {
            ", style=dashed, color=orange, fontcolor=orange"
        } else {
            ""
        };
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"TTL {}\"{}];\n",
            row[0], row[1], row[2], style
        ));
    }
    out.push_str("}\n");
    out
}

/// Checks the crawled edges against the expected graph
/// ([`metacdn::mapping_graph`]); returns the expected edges that were never
/// observed (should be empty for a healthy crawl).
pub fn missing_edges(crawled: &Table) -> Vec<String> {
    metacdn::mapping_graph(true)
        .into_iter()
        .filter(|e| {
            !crawled
                .rows
                .iter()
                .any(|r| r[0] == e.from && r[1] == e.to && r[2] == e.ttl.to_string())
        })
        .map(|e| format!("{} -> {}", e.from, e.to))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_scenario::ScenarioConfig;

    #[test]
    fn crawl_reproduces_the_paper_graph() {
        let world = World::build(&ScenarioConfig::fast());
        let t = fig2(&world);
        // The entry edge with its 21600 TTL.
        let entry = t.find_row(0, "appldnld.apple.com").expect("entry edge");
        assert_eq!(entry[1], "appldnld.apple.com.akadns.net");
        assert_eq!(entry[2], "21600");
        assert_eq!(entry[3], "steady");
        // The selector with TTL 15 to both Apple and third-party branches.
        let selector_edges: Vec<_> =
            t.rows.iter().filter(|r| r[0] == "appldnld.g.applimg.com").collect();
        assert!(selector_edges.len() >= 2, "both branches crawled");
        assert!(selector_edges.iter().all(|r| r[2] == "15"));
        // The a1015 event path appears, flagged event-only.
        let a1015 = t.find_row(1, "a1015.gi3.akamai.net").expect("event map edge");
        assert_eq!(a1015[3], "event-only");
        // The DOT rendering carries every edge, with the event path dashed.
        let dot = to_dot(&t);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("a1015.gi3.akamai.net\" [label=\"TTL 300\", style=dashed"));
        // Nothing expected is missing (the China/India edges only appear to
        // CN/IN clients, which the VM fleet lacks — exclude them).
        let missing: Vec<_> = missing_edges(&t)
            .into_iter()
            .filter(|m| !m.contains("china") && !m.contains("india"))
            .collect();
        assert!(missing.is_empty(), "missing edges: {missing:?}");
    }
}
