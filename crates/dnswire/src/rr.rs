//! Resource records: types, classes, and RDATA encode/decode.

use crate::error::WireError;
use crate::name::Name;
use core::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNS record types used by the measurement (plus an escape hatch for
/// anything else seen on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (the edges of the Figure 2 mapping graph).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse DNS; drives the Table 1 analysis).
    Ptr,
    /// Text strings.
    Txt,
    /// IPv6 host address (the paper observes Apple's mapping answers none).
    Aaaa,
    /// Any other type, carried opaquely.
    Other(u16),
}

impl RecordType {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Other(v) => v,
        }
    }

    /// From the 16-bit wire value.
    pub fn from_u16(v: u16) -> RecordType {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            other => RecordType::Other(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => f.write_str("A"),
            RecordType::Ns => f.write_str("NS"),
            RecordType::Cname => f.write_str("CNAME"),
            RecordType::Soa => f.write_str("SOA"),
            RecordType::Ptr => f.write_str("PTR"),
            RecordType::Txt => f.write_str("TXT"),
            RecordType::Aaaa => f.write_str("AAAA"),
            RecordType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// DNS class. Only `IN` matters here, but the wire field is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// The Internet.
    In,
    /// Anything else.
    Other(u16),
}

impl Class {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            Class::In => 1,
            Class::Other(v) => v,
        }
    }
    /// From the 16-bit wire value.
    pub fn from_u16(v: u16) -> Class {
        if v == 1 {
            Class::In
        } else {
            Class::Other(v)
        }
    }
}

/// SOA RDATA fields (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soa {
    /// Primary name server.
    pub mname: Name,
    /// Responsible mailbox.
    pub rname: Name,
    /// Zone serial.
    pub serial: u32,
    /// Refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry, seconds.
    pub expire: u32,
    /// Negative-caching TTL, seconds.
    pub minimum: u32,
}

/// Decoded RDATA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// Name server.
    Ns(Name),
    /// Canonical name.
    Cname(Name),
    /// Start of authority.
    Soa(Box<Soa>),
    /// Reverse pointer.
    Ptr(Name),
    /// Text strings (each ≤255 octets).
    Txt(Vec<Vec<u8>>),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Opaque bytes for unmodelled types, tagged with the wire type code.
    Other(u16, Vec<u8>),
}

impl RData {
    /// The record type this RDATA belongs with.
    pub fn rtype(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Soa(_) => RecordType::Soa,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Txt(_) => RecordType::Txt,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Other(code, _) => RecordType::Other(*code),
        }
    }

    /// Encodes RDATA (uncompressed names, as modern encoders do) into `out`.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            RData::A(a) => out.extend_from_slice(&a.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode_uncompressed(out),
            RData::Soa(soa) => {
                soa.mname.encode_uncompressed(out);
                soa.rname.encode_uncompressed(out);
                for v in [soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum] {
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
            RData::Txt(strings) => {
                for s in strings {
                    if s.len() > 255 {
                        return Err(WireError::TxtTooLong);
                    }
                    out.push(s.len() as u8);
                    out.extend_from_slice(s);
                }
            }
            RData::Aaaa(a) => out.extend_from_slice(&a.octets()),
            RData::Other(_, bytes) => out.extend_from_slice(bytes),
        }
        Ok(())
    }

    /// Decodes RDATA of type `rtype` from `buf[pos..pos+rdlen]`; `buf` is the
    /// whole message so compressed names inside RDATA resolve correctly.
    pub(crate) fn decode(
        rtype: RecordType,
        buf: &[u8],
        pos: usize,
        rdlen: usize,
    ) -> Result<RData, WireError> {
        let end = pos + rdlen;
        let slice = buf.get(pos..end).ok_or(WireError::Truncated)?;
        match rtype {
            RecordType::A => {
                let octets: [u8; 4] = slice.try_into().map_err(|_| WireError::BadRdata)?;
                Ok(RData::A(Ipv4Addr::from(octets)))
            }
            RecordType::Aaaa => {
                let octets: [u8; 16] = slice.try_into().map_err(|_| WireError::BadRdata)?;
                Ok(RData::Aaaa(Ipv6Addr::from(octets)))
            }
            RecordType::Ns | RecordType::Cname | RecordType::Ptr => {
                let (name, after) = Name::decode(buf, pos)?;
                if after != end {
                    return Err(WireError::BadRdata);
                }
                match rtype {
                    RecordType::Ns => Ok(RData::Ns(name)),
                    RecordType::Cname => Ok(RData::Cname(name)),
                    _ => Ok(RData::Ptr(name)),
                }
            }
            RecordType::Soa => {
                let (mname, p) = Name::decode(buf, pos)?;
                let (rname, p) = Name::decode(buf, p)?;
                let tail = buf.get(p..p + 20).ok_or(WireError::BadRdata)?;
                if p + 20 != end {
                    return Err(WireError::BadRdata);
                }
                let word = |i: usize| u32::from_be_bytes(tail[i * 4..i * 4 + 4].try_into().unwrap());
                Ok(RData::Soa(Box::new(Soa {
                    mname,
                    rname,
                    serial: word(0),
                    refresh: word(1),
                    retry: word(2),
                    expire: word(3),
                    minimum: word(4),
                })))
            }
            RecordType::Txt => {
                let mut strings = Vec::new();
                let mut p = 0;
                while p < slice.len() {
                    let len = slice[p] as usize;
                    let s = slice.get(p + 1..p + 1 + len).ok_or(WireError::BadRdata)?;
                    strings.push(s.to_vec());
                    p += 1 + len;
                }
                Ok(RData::Txt(strings))
            }
            RecordType::Other(code) => Ok(RData::Other(code, slice.to_vec())),
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: Name,
    /// Class (normally `IN`).
    pub class: Class,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Type-specific data.
    pub rdata: RData,
}

impl ResourceRecord {
    /// Convenience constructor for an `IN` record.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> ResourceRecord {
        ResourceRecord { name, class: Class::In, ttl, rdata }
    }

    /// The record type, derived from the RDATA variant.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }
}

impl fmt::Display for ResourceRecord {
    /// Zone-file-like presentation: `name ttl IN TYPE rdata`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} IN {} ", self.name, self.ttl, self.rtype())?;
        match &self.rdata {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, "{n}"),
            RData::Soa(s) => write!(f, "{} {} {}", s.mname, s.rname, s.serial),
            RData::Txt(strings) => {
                for s in strings {
                    write!(f, "\"{}\" ", String::from_utf8_lossy(s))?;
                }
                Ok(())
            }
            RData::Other(_, b) => write!(f, "\\# {}", b.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_type_wire_values() {
        for (t, v) in [
            (RecordType::A, 1),
            (RecordType::Ns, 2),
            (RecordType::Cname, 5),
            (RecordType::Soa, 6),
            (RecordType::Ptr, 12),
            (RecordType::Txt, 16),
            (RecordType::Aaaa, 28),
        ] {
            assert_eq!(t.to_u16(), v);
            assert_eq!(RecordType::from_u16(v), t);
        }
        assert_eq!(RecordType::from_u16(99), RecordType::Other(99));
    }

    #[test]
    fn a_record_roundtrip() {
        let rdata = RData::A(Ipv4Addr::new(17, 253, 1, 8));
        let mut buf = Vec::new();
        rdata.encode(&mut buf).unwrap();
        assert_eq!(buf, [17, 253, 1, 8]);
        let back = RData::decode(RecordType::A, &buf, 0, 4).unwrap();
        assert_eq!(back, rdata);
    }

    #[test]
    fn a_record_bad_length() {
        assert_eq!(
            RData::decode(RecordType::A, &[1, 2, 3], 0, 3).unwrap_err(),
            WireError::BadRdata
        );
    }

    #[test]
    fn cname_roundtrip() {
        let target = Name::parse("appldnld.apple.com.akadns.net").unwrap();
        let rdata = RData::Cname(target.clone());
        let mut buf = Vec::new();
        rdata.encode(&mut buf).unwrap();
        let back = RData::decode(RecordType::Cname, &buf, 0, buf.len()).unwrap();
        assert_eq!(back, RData::Cname(target));
    }

    #[test]
    fn soa_roundtrip() {
        let soa = Soa {
            mname: Name::parse("adns1.apple.com").unwrap(),
            rname: Name::parse("hostmaster.apple.com").unwrap(),
            serial: 2017091901,
            refresh: 1800,
            retry: 900,
            expire: 2016000,
            minimum: 1800,
        };
        let rdata = RData::Soa(Box::new(soa));
        let mut buf = Vec::new();
        rdata.encode(&mut buf).unwrap();
        let back = RData::decode(RecordType::Soa, &buf, 0, buf.len()).unwrap();
        assert_eq!(back, rdata);
    }

    #[test]
    fn txt_roundtrip_and_limits() {
        let rdata = RData::Txt(vec![b"hello".to_vec(), b"world".to_vec()]);
        let mut buf = Vec::new();
        rdata.encode(&mut buf).unwrap();
        let back = RData::decode(RecordType::Txt, &buf, 0, buf.len()).unwrap();
        assert_eq!(back, rdata);

        let too_long = RData::Txt(vec![vec![b'x'; 256]]);
        let mut buf = Vec::new();
        assert_eq!(too_long.encode(&mut buf).unwrap_err(), WireError::TxtTooLong);
    }

    #[test]
    fn display_zone_format() {
        let rr = ResourceRecord::new(
            Name::parse("appldnld.apple.com").unwrap(),
            21600,
            RData::Cname(Name::parse("appldnld.apple.com.akadns.net").unwrap()),
        );
        assert_eq!(
            rr.to_string(),
            "appldnld.apple.com 21600 IN CNAME appldnld.apple.com.akadns.net"
        );
    }
}
