//! RFC 1035 DNS wire format, implemented from scratch.
//!
//! This crate is the protocol substrate of the measurement platform: probes
//! and the recursive resolver in `mcdn-dnssim` exchange real DNS packets so
//! the reproduction exercises the same encode/decode path a production
//! measurement tool would.
//!
//! Design follows the smoltcp school: explicit [`Message::encode`] /
//! [`Message::decode`] on byte buffers, no panics on malformed input, one
//! error enum ([`WireError`]) for the whole layer. Encoding performs standard
//! RFC 1035 §4.1.4 name compression; decoding follows compression pointers
//! with loop protection.
//!
//! Supported record types cover everything the paper's measurement needs:
//! `A` for cache addresses, `CNAME` for the mapping-chain edges of Figure 2,
//! `NS`/`SOA` for delegation, `PTR` for the reverse-DNS naming-scheme
//! analysis (Table 1), `TXT` and `AAAA` for completeness (the paper notes the
//! mapping entry points answer no AAAA — tests assert that behaviour in the
//! simulator).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod display;
pub mod edns;
pub mod error;
pub mod message;
pub mod name;
pub mod rr;

pub use display::dig_format;
pub use edns::{attach_ecs, extract_ecs, ClientSubnet};
pub use error::WireError;
pub use message::{Flags, Header, Message, Opcode, Question, Rcode};
pub use name::Name;
pub use rr::{Class, RData, RecordType, ResourceRecord, Soa};
