//! Domain names: parsing, display, ordering, and wire representation.

use crate::error::WireError;
use core::fmt;
use std::hash::{Hash, Hasher};

/// Maximum length of a single label on the wire (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a whole name on the wire (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum number of compression pointers we will chase before declaring a
/// loop. A legal message can never need more than the number of labels, and
/// 128 comfortably exceeds any legitimate chain.
const MAX_POINTER_HOPS: usize = 128;

/// A fully-qualified domain name, stored as a sequence of lowercase labels.
///
/// DNS names compare case-insensitively (RFC 1035 §2.3.3); `Name` normalizes
/// ASCII to lowercase at construction so `Eq`/`Hash`/`Ord` are cheap and
/// consistent.
#[derive(Debug, Clone, Eq, PartialOrd, Ord, Default)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Name {
        Name { labels: Vec::new() }
    }

    /// Parses a dotted name such as `appldnld.apple.com`. A single trailing
    /// dot (FQDN notation) is accepted; empty labels elsewhere are rejected.
    pub fn parse(s: &str) -> Result<Name, WireError> {
        if s == "." {
            return Ok(Name::root());
        }
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Err(WireError::BadName);
        }
        let mut labels = Vec::new();
        for part in s.split('.') {
            if part.is_empty() {
                return Err(WireError::BadName);
            }
            if part.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong);
            }
            labels.push(part.bytes().map(|b| b.to_ascii_lowercase()).collect());
        }
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong);
        }
        Ok(name)
    }

    /// Builds a name from raw label byte strings.
    pub fn from_labels<I, L>(labels: I) -> Result<Name, WireError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(WireError::BadName);
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong);
            }
            out.push(l.iter().map(|b| b.to_ascii_lowercase()).collect());
        }
        let name = Name { labels: out };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong);
        }
        Ok(name)
    }

    /// The labels, root-most last.
    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length of this name on the wire, including the terminating zero octet.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Whether `self` equals `suffix` or is a subdomain of it
    /// (`a.b.example.com` is within `example.com`).
    pub fn is_within(&self, suffix: &Name) -> bool {
        if suffix.labels.len() > self.labels.len() {
            return false;
        }
        let skip = self.labels.len() - suffix.labels.len();
        self.labels[skip..] == suffix.labels[..]
    }

    /// The name with its leftmost label removed (`a.b.c` → `b.c`); `None` at
    /// the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name { labels: self.labels[1..].to_vec() })
        }
    }

    /// Prepends a label (`child("www")` on `example.com` → `www.example.com`).
    pub fn child(&self, label: &str) -> Result<Name, WireError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.as_bytes().to_vec());
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// Encodes the name without compression, appending to `out`.
    pub fn encode_uncompressed(&self, out: &mut Vec<u8>) {
        for l in &self.labels {
            out.push(l.len() as u8);
            out.extend_from_slice(l);
        }
        out.push(0);
    }

    /// Decodes a name starting at `pos` in `buf`, following compression
    /// pointers. Returns the name and the position just past its *first*
    /// occurrence (i.e. past the pointer if one was used).
    pub fn decode(buf: &[u8], pos: usize) -> Result<(Name, usize), WireError> {
        let mut labels = Vec::new();
        let mut cursor = pos;
        let mut after: Option<usize> = None; // resume point after first pointer
        let mut hops = 0usize;
        let mut wire_len = 1usize; // terminating zero
        loop {
            let len = *buf.get(cursor).ok_or(WireError::Truncated)? as usize;
            match len {
                0 => {
                    cursor += 1;
                    break;
                }
                1..=MAX_LABEL_LEN => {
                    let start = cursor + 1;
                    let end = start + len;
                    let label = buf.get(start..end).ok_or(WireError::Truncated)?;
                    wire_len += len + 1;
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    labels.push(label.iter().map(|b| b.to_ascii_lowercase()).collect());
                    cursor = end;
                }
                l if l & 0xC0 == 0xC0 => {
                    let second = *buf.get(cursor + 1).ok_or(WireError::Truncated)? as usize;
                    let target = ((len & 0x3F) << 8) | second;
                    // Pointers must point strictly backwards to prevent loops.
                    if target >= cursor {
                        return Err(WireError::BadPointer);
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer);
                    }
                    if after.is_none() {
                        after = Some(cursor + 2);
                    }
                    cursor = target;
                }
                _ => return Err(WireError::BadLabelType),
            }
        }
        Ok((Name { labels }, after.unwrap_or(cursor)))
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels == other.labels
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.labels.hash(state)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            for &b in l {
                if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["appldnld.apple.com", "a.gslb.applimg.com", "x.y", "com"] {
            assert_eq!(n(s).to_string(), s);
        }
    }

    #[test]
    fn trailing_dot_and_case_insensitivity() {
        assert_eq!(n("Apple.COM."), n("apple.com"));
    }

    #[test]
    fn root_name() {
        let r = Name::parse(".").unwrap();
        assert!(r.is_root());
        assert_eq!(r.to_string(), ".");
        assert_eq!(r.wire_len(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Name::parse("").is_err());
        assert!(Name::parse("a..b").is_err());
        assert!(Name::parse(&"x".repeat(64)).is_err());
        let long = vec!["abcdefgh"; 32].join("."); // 32*9 = 288 > 255
        assert!(Name::parse(&long).is_err());
    }

    #[test]
    fn suffix_matching() {
        assert!(n("appldnld.apple.com").is_within(&n("apple.com")));
        assert!(n("apple.com").is_within(&n("apple.com")));
        assert!(!n("apple.com").is_within(&n("appldnld.apple.com")));
        assert!(!n("notapple.com").is_within(&n("apple.com")));
        assert!(n("apple.com").is_within(&Name::root()));
    }

    #[test]
    fn parent_and_child() {
        let name = n("a.b.c");
        assert_eq!(name.parent().unwrap(), n("b.c"));
        assert_eq!(n("b.c").child("a").unwrap(), name);
        assert!(Name::root().parent().is_none());
    }

    #[test]
    fn wire_roundtrip_uncompressed() {
        let name = n("usnyc3-vip-bx-008.aaplimg.com");
        let mut buf = Vec::new();
        name.encode_uncompressed(&mut buf);
        assert_eq!(buf.len(), name.wire_len());
        let (decoded, end) = Name::decode(&buf, 0).unwrap();
        assert_eq!(decoded, name);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn decode_with_pointer() {
        // "apple.com" at 0, then "www" + pointer to 0 at offset 11.
        let mut buf = Vec::new();
        n("apple.com").encode_uncompressed(&mut buf);
        let ptr_at = buf.len();
        buf.push(3);
        buf.extend_from_slice(b"www");
        buf.push(0xC0);
        buf.push(0);
        let (decoded, end) = Name::decode(&buf, ptr_at).unwrap();
        assert_eq!(decoded, n("www.apple.com"));
        assert_eq!(end, buf.len());
    }

    #[test]
    fn decode_rejects_forward_pointer_and_loop() {
        // Pointer to itself.
        let buf = [0xC0u8, 0x00];
        assert_eq!(Name::decode(&buf, 0).unwrap_err(), WireError::BadPointer);
        // Forward pointer.
        let buf = [0xC0u8, 0x02, 0x00];
        assert_eq!(Name::decode(&buf, 0).unwrap_err(), WireError::BadPointer);
    }

    #[test]
    fn decode_rejects_truncation_and_reserved_types() {
        assert_eq!(Name::decode(&[5, b'a'], 0).unwrap_err(), WireError::Truncated);
        assert_eq!(Name::decode(&[], 0).unwrap_err(), WireError::Truncated);
        assert_eq!(Name::decode(&[0x80, 0x01, 0], 0).unwrap_err(), WireError::BadLabelType);
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = [n("b.com"), n("a.com"), n("a.com")];
        v.sort();
        assert_eq!(v[0], n("a.com"));
    }
}
