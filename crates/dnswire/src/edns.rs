//! EDNS(0) and the Client-Subnet option (RFC 6891, RFC 7871).
//!
//! Location-based mapping like Apple's GSLB needs a location signal. In the
//! wild that signal is the recursive resolver's address, optionally refined
//! by the **EDNS Client Subnet** (ECS) option carrying a truncated client
//! prefix. The simulation passes client location explicitly (see
//! `mcdn-dnssim`), but the wire format implements ECS fully so captured or
//! generated packets carry the same bytes a production mapper would see —
//! and so the simplification is a measured choice, not a missing feature.

use crate::error::WireError;
use crate::message::Message;
use crate::name::Name;
use crate::rr::{Class, RData, RecordType, ResourceRecord};
use std::net::Ipv4Addr;

/// The OPT pseudo-RR type code.
pub const OPT_TYPE: u16 = 41;
/// The ECS option code.
pub const ECS_OPTION_CODE: u16 = 8;
/// ECS address family for IPv4.
const FAMILY_IPV4: u16 = 1;

/// An EDNS Client-Subnet option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientSubnet {
    /// The (possibly truncated) client prefix.
    pub addr: Ipv4Addr,
    /// Prefix length the client asked to disclose (commonly 24).
    pub source_prefix_len: u8,
    /// Prefix length the authority actually used (0 in queries).
    pub scope_prefix_len: u8,
}

impl ClientSubnet {
    /// A query-side option disclosing `addr/<len>`.
    pub fn query(addr: Ipv4Addr, source_prefix_len: u8) -> ClientSubnet {
        let masked = mask(addr, source_prefix_len);
        ClientSubnet { addr: masked, source_prefix_len, scope_prefix_len: 0 }
    }

    /// Encodes the option's RDATA payload (option code + length + body).
    pub fn encode_option(&self) -> Vec<u8> {
        let octets = self.addr.octets();
        // RFC 7871: address truncated to the fewest octets covering the
        // source prefix length.
        let addr_octets = self.source_prefix_len.div_ceil(8) as usize;
        let mut body = Vec::with_capacity(4 + addr_octets);
        body.extend_from_slice(&FAMILY_IPV4.to_be_bytes());
        body.push(self.source_prefix_len);
        body.push(self.scope_prefix_len);
        body.extend_from_slice(&octets[..addr_octets]);
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&ECS_OPTION_CODE.to_be_bytes());
        out.extend_from_slice(&(body.len() as u16).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes an ECS option body (after the option code/length header).
    pub fn decode_option(body: &[u8]) -> Result<ClientSubnet, WireError> {
        if body.len() < 4 {
            return Err(WireError::Truncated);
        }
        let family = u16::from_be_bytes([body[0], body[1]]);
        if family != FAMILY_IPV4 {
            return Err(WireError::BadRdata);
        }
        let source_prefix_len = body[2];
        let scope_prefix_len = body[3];
        if source_prefix_len > 32 {
            return Err(WireError::BadRdata);
        }
        let addr_octets = source_prefix_len.div_ceil(8) as usize;
        if body.len() != 4 + addr_octets {
            return Err(WireError::BadRdata);
        }
        let mut octets = [0u8; 4];
        octets[..addr_octets].copy_from_slice(&body[4..]);
        let addr = Ipv4Addr::from(octets);
        // RFC 7871 §6: bits beyond the source prefix MUST be zero.
        if addr != mask(addr, source_prefix_len) {
            return Err(WireError::BadRdata);
        }
        Ok(ClientSubnet { addr, source_prefix_len, scope_prefix_len })
    }
}

fn mask(addr: Ipv4Addr, len: u8) -> Ipv4Addr {
    let bits = u32::from(addr);
    let mask = if len == 0 { 0 } else { u32::MAX << (32 - len.min(32) as u32) };
    Ipv4Addr::from(bits & mask)
}

/// Attaches an OPT pseudo-RR with an ECS option to `msg`'s additional
/// section (replacing any existing OPT), advertising `udp_payload` size.
pub fn attach_ecs(msg: &mut Message, ecs: ClientSubnet, udp_payload: u16) {
    msg.additionals.retain(|rr| rr.rtype() != RecordType::Other(OPT_TYPE));
    msg.additionals.push(ResourceRecord {
        name: Name::root(),
        // The OPT "class" field carries the advertised UDP payload size.
        class: Class::Other(udp_payload),
        ttl: 0, // flags/extended-rcode, all zero here
        rdata: RData::Other(OPT_TYPE, ecs.encode_option()),
    });
}

/// Extracts the ECS option from a message's OPT pseudo-RR, if present.
pub fn extract_ecs(msg: &Message) -> Option<Result<ClientSubnet, WireError>> {
    let opt = msg
        .additionals
        .iter()
        .find(|rr| rr.rtype() == RecordType::Other(OPT_TYPE) && rr.name.is_root())?;
    let RData::Other(_, rdata) = &opt.rdata else { return None };
    // Walk the options TLV list looking for ECS.
    let mut pos = 0usize;
    while pos + 4 <= rdata.len() {
        let code = u16::from_be_bytes([rdata[pos], rdata[pos + 1]]);
        let len = u16::from_be_bytes([rdata[pos + 2], rdata[pos + 3]]) as usize;
        let Some(body) = rdata.get(pos + 4..pos + 4 + len) else {
            return Some(Err(WireError::Truncated));
        };
        if code == ECS_OPTION_CODE {
            return Some(ClientSubnet::decode_option(body));
        }
        pos += 4 + len;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_common_prefix_lengths() {
        for len in [0u8, 8, 16, 20, 24, 32] {
            let ecs = ClientSubnet::query(Ipv4Addr::new(84, 17, 133, 201), len);
            let encoded = ecs.encode_option();
            // Strip the 4-byte option header for decode.
            let decoded = ClientSubnet::decode_option(&encoded[4..]).unwrap();
            assert_eq!(decoded, ecs, "len {len}");
        }
    }

    #[test]
    fn query_masks_host_bits() {
        let ecs = ClientSubnet::query(Ipv4Addr::new(84, 17, 133, 201), 24);
        assert_eq!(ecs.addr, Ipv4Addr::new(84, 17, 133, 0));
        let ecs = ClientSubnet::query(Ipv4Addr::new(84, 17, 133, 201), 20);
        assert_eq!(ecs.addr, Ipv4Addr::new(84, 17, 128, 0));
    }

    #[test]
    fn decode_rejects_nonzero_host_bits() {
        // /24 with a fourth octet present and non-conforming bits: craft
        // body manually (family=1, src=20, scope=0, 3 addr octets where the
        // last violates the /20 mask).
        let body = [0u8, 1, 20, 0, 84, 17, 133];
        assert_eq!(ClientSubnet::decode_option(&body).unwrap_err(), WireError::BadRdata);
    }

    #[test]
    fn decode_rejects_bad_family_and_lengths() {
        assert_eq!(ClientSubnet::decode_option(&[0, 2, 24, 0, 1, 2, 3]).unwrap_err(), WireError::BadRdata);
        assert_eq!(ClientSubnet::decode_option(&[0, 1, 40, 0]).unwrap_err(), WireError::BadRdata);
        assert_eq!(ClientSubnet::decode_option(&[0, 1]).unwrap_err(), WireError::Truncated);
        // Length/body mismatch.
        assert_eq!(ClientSubnet::decode_option(&[0, 1, 24, 0, 1, 2]).unwrap_err(), WireError::BadRdata);
    }

    #[test]
    fn message_roundtrip_with_ecs() {
        let mut msg = Message::query(
            0xECE5,
            Name::parse("appldnld.apple.com").unwrap(),
            RecordType::A,
        );
        let ecs = ClientSubnet::query(Ipv4Addr::new(84, 17, 133, 201), 24);
        attach_ecs(&mut msg, ecs, 4096);
        let bytes = msg.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        let got = extract_ecs(&back).expect("OPT present").expect("ECS parses");
        assert_eq!(got, ecs);
        // Advertised payload size survives in the OPT class field.
        let opt = back.additionals.iter().find(|r| r.rtype() == RecordType::Other(OPT_TYPE)).unwrap();
        assert_eq!(opt.class, Class::Other(4096));
    }

    #[test]
    fn attach_replaces_existing_opt() {
        let mut msg = Message::query(1, Name::parse("x.com").unwrap(), RecordType::A);
        attach_ecs(&mut msg, ClientSubnet::query(Ipv4Addr::new(10, 0, 0, 0), 8), 512);
        attach_ecs(&mut msg, ClientSubnet::query(Ipv4Addr::new(84, 17, 0, 0), 16), 1232);
        assert_eq!(msg.additionals.len(), 1);
        let got = extract_ecs(&msg).unwrap().unwrap();
        assert_eq!(got.source_prefix_len, 16);
    }

    #[test]
    fn messages_without_opt_have_no_ecs() {
        let msg = Message::query(1, Name::parse("x.com").unwrap(), RecordType::A);
        assert!(extract_ecs(&msg).is_none());
    }
}
