//! Error type for DNS wire encoding and decoding.

use core::fmt;

/// Everything that can go wrong while parsing or emitting a DNS message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// A label exceeded 63 octets.
    LabelTooLong,
    /// A name exceeded 255 octets on the wire.
    NameTooLong,
    /// A domain-name string was empty or otherwise malformed.
    BadName,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label length octet used the reserved `0b10xxxxxx`/`0b01xxxxxx` forms.
    BadLabelType,
    /// An RDATA section did not match its declared RDLENGTH.
    BadRdata,
    /// A TXT character-string exceeded 255 octets.
    TxtTooLong,
    /// The output buffer was too small for the encoded message.
    BufferTooSmall,
    /// A count field in the header promised more records than were present.
    CountMismatch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WireError::Truncated => "message truncated",
            WireError::LabelTooLong => "label longer than 63 octets",
            WireError::NameTooLong => "name longer than 255 octets",
            WireError::BadName => "malformed domain name",
            WireError::BadPointer => "invalid compression pointer",
            WireError::BadLabelType => "reserved label type",
            WireError::BadRdata => "RDATA length mismatch",
            WireError::TxtTooLong => "TXT string longer than 255 octets",
            WireError::BufferTooSmall => "output buffer too small",
            WireError::CountMismatch => "record count mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}
