//! `dig`-style presentation of DNS messages.
//!
//! Measurement papers quote resolver output in the familiar `dig` layout;
//! the examples in this workspace do the same. This module renders a
//! [`Message`] the way `dig +noall +answer`-ish tooling would, so simulated
//! resolutions can be eyeballed against the paper's listings.

use crate::message::{Message, Rcode};

/// Renders a message in a `dig`-like layout: status line, question section,
/// then each record section.
pub fn dig_format(msg: &Message) -> String {
    let status = match msg.header.rcode {
        Rcode::NoError => "NOERROR",
        Rcode::FormErr => "FORMERR",
        Rcode::ServFail => "SERVFAIL",
        Rcode::NxDomain => "NXDOMAIN",
        Rcode::NotImp => "NOTIMP",
        Rcode::Refused => "REFUSED",
        Rcode::Other(_) => "RESERVED",
    };
    let mut flags = String::new();
    if msg.header.flags.qr {
        flags.push_str(" qr");
    }
    if msg.header.flags.aa {
        flags.push_str(" aa");
    }
    if msg.header.flags.rd {
        flags.push_str(" rd");
    }
    if msg.header.flags.ra {
        flags.push_str(" ra");
    }
    let mut out = format!(
        ";; ->>HEADER<<- opcode: QUERY, status: {status}, id: {}\n;; flags:{flags}; \
QUERY: {}, ANSWER: {}, AUTHORITY: {}, ADDITIONAL: {}\n",
        msg.header.id,
        msg.questions.len(),
        msg.answers.len(),
        msg.authorities.len(),
        msg.additionals.len()
    );
    if !msg.questions.is_empty() {
        out.push_str("\n;; QUESTION SECTION:\n");
        for q in &msg.questions {
            out.push_str(&format!(";{}.\t\tIN\t{}\n", q.name, q.qtype));
        }
    }
    for (label, rrs) in [
        ("ANSWER", &msg.answers),
        ("AUTHORITY", &msg.authorities),
        ("ADDITIONAL", &msg.additionals),
    ] {
        if !rrs.is_empty() {
            out.push_str(&format!("\n;; {label} SECTION:\n"));
            for rr in rrs {
                out.push_str(&format!("{rr}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;
    use crate::rr::{RData, RecordType, ResourceRecord};
    use std::net::Ipv4Addr;

    #[test]
    fn renders_the_familiar_layout() {
        let q = Message::query(0x1a2b, Name::parse("appldnld.apple.com").unwrap(), RecordType::A);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.answers.push(ResourceRecord::new(
            Name::parse("appldnld.apple.com").unwrap(),
            21600,
            RData::Cname(Name::parse("appldnld.apple.com.akadns.net").unwrap()),
        ));
        resp.answers.push(ResourceRecord::new(
            Name::parse("a.gslb.applimg.com").unwrap(),
            20,
            RData::A(Ipv4Addr::new(17, 253, 37, 16)),
        ));
        let text = dig_format(&resp);
        assert!(text.contains("status: NOERROR, id: 6699"));
        assert!(text.contains(";; QUESTION SECTION:"));
        assert!(text.contains(";appldnld.apple.com.\t\tIN\tA"));
        assert!(text.contains(";; ANSWER SECTION:"));
        assert!(text.contains("appldnld.apple.com 21600 IN CNAME"));
        assert!(text.contains("a.gslb.applimg.com 20 IN A 17.253.37.16"));
        assert!(!text.contains("AUTHORITY SECTION"), "empty sections are omitted");
    }

    #[test]
    fn nxdomain_status_shown() {
        let q = Message::query(1, Name::parse("nope.example").unwrap(), RecordType::A);
        let resp = Message::response_to(&q, Rcode::NxDomain);
        assert!(dig_format(&resp).contains("status: NXDOMAIN"));
    }
}
