//! DNS messages: header, question, and full encode/decode with compression.

use crate::error::WireError;
use crate::name::Name;
use crate::rr::{Class, RData, RecordType, ResourceRecord};
use std::collections::HashMap;

/// Query/response operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Anything else, carried opaquely.
    Other(u8),
}

impl Opcode {
    fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Other(v) => v & 0x0F,
        }
    }
    fn from_u8(v: u8) -> Opcode {
        if v == 0 {
            Opcode::Query
        } else {
            Opcode::Other(v)
        }
    }
}

/// Response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Query refused.
    Refused,
    /// Anything else.
    Other(u8),
}

impl Rcode {
    fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0F,
        }
    }
    fn from_u8(v: u8) -> Rcode {
        match v {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Header flag bits (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Response (true) or query (false).
    pub qr: bool,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
}

/// Message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Transaction id.
    pub id: u16,
    /// Flag bits.
    pub flags: Flags,
    /// Operation code.
    pub opcode: Opcode,
    /// Response code.
    pub rcode: Rcode,
}

impl Default for Header {
    fn default() -> Self {
        Header { id: 0, flags: Flags::default(), opcode: Opcode::Query, rcode: Rcode::NoError }
    }
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: RecordType,
    /// Queried class.
    pub qclass: Class,
}

impl Question {
    /// An `IN`-class question.
    pub fn new(name: Name, qtype: RecordType) -> Question {
        Question { name, qtype, qclass: Class::In }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    /// Header.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authorities: Vec<ResourceRecord>,
    /// Additional section.
    pub additionals: Vec<ResourceRecord>,
}

/// Tracks previously emitted names for RFC 1035 §4.1.4 compression.
struct Compressor {
    offsets: HashMap<Name, usize>,
}

impl Compressor {
    fn new() -> Compressor {
        Compressor { offsets: HashMap::new() }
    }

    /// Emits `name` at the current end of `out`, reusing earlier occurrences
    /// of any suffix via pointers and remembering new suffixes.
    fn emit(&mut self, name: &Name, out: &mut Vec<u8>) {
        let mut current = name.clone();
        loop {
            if current.is_root() {
                out.push(0);
                return;
            }
            if let Some(&off) = self.offsets.get(&current) {
                // Pointers only address the first 16 KiB minus the two flag bits.
                if off < 0x4000 {
                    out.push(0xC0 | ((off >> 8) as u8));
                    out.push((off & 0xFF) as u8);
                    return;
                }
            }
            let here = out.len();
            if here < 0x4000 {
                self.offsets.insert(current.clone(), here);
            }
            let label = &current.labels()[0];
            out.push(label.len() as u8);
            out.extend_from_slice(label);
            current = current.parent().expect("non-root name has a parent");
        }
    }
}

impl Message {
    /// Builds a recursive query for `name`/`qtype` with transaction id `id`.
    pub fn query(id: u16, name: Name, qtype: RecordType) -> Message {
        Message {
            header: Header {
                id,
                flags: Flags { rd: true, ..Flags::default() },
                opcode: Opcode::Query,
                rcode: Rcode::NoError,
            },
            questions: vec![Question::new(name, qtype)],
            ..Message::default()
        }
    }

    /// Builds a response skeleton echoing `query`'s id and question.
    pub fn response_to(query: &Message, rcode: Rcode) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                flags: Flags { qr: true, rd: query.header.flags.rd, ra: true, ..Flags::default() },
                opcode: query.header.opcode,
                rcode,
            },
            questions: query.questions.clone(),
            ..Message::default()
        }
    }

    /// Encodes the message to bytes with name compression.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::with_capacity(512);
        out.extend_from_slice(&self.header.id.to_be_bytes());
        let f = &self.header.flags;
        let b2 = ((f.qr as u8) << 7)
            | (self.header.opcode.to_u8() << 3)
            | ((f.aa as u8) << 2)
            | ((f.tc as u8) << 1)
            | (f.rd as u8);
        let b3 = ((f.ra as u8) << 7) | self.header.rcode.to_u8();
        out.push(b2);
        out.push(b3);
        for count in [
            self.questions.len(),
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len(),
        ] {
            let count = u16::try_from(count).map_err(|_| WireError::CountMismatch)?;
            out.extend_from_slice(&count.to_be_bytes());
        }
        let mut comp = Compressor::new();
        for q in &self.questions {
            comp.emit(&q.name, &mut out);
            out.extend_from_slice(&q.qtype.to_u16().to_be_bytes());
            out.extend_from_slice(&q.qclass.to_u16().to_be_bytes());
        }
        for rr in self.answers.iter().chain(&self.authorities).chain(&self.additionals) {
            comp.emit(&rr.name, &mut out);
            out.extend_from_slice(&rr.rtype().to_u16().to_be_bytes());
            out.extend_from_slice(&rr.class.to_u16().to_be_bytes());
            out.extend_from_slice(&rr.ttl.to_be_bytes());
            let rdlen_at = out.len();
            out.extend_from_slice(&[0, 0]);
            let start = out.len();
            rr.rdata.encode(&mut out)?;
            let rdlen = u16::try_from(out.len() - start).map_err(|_| WireError::BadRdata)?;
            out[rdlen_at..rdlen_at + 2].copy_from_slice(&rdlen.to_be_bytes());
        }
        Ok(out)
    }

    /// Decodes a message from bytes.
    pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
        if buf.len() < 12 {
            return Err(WireError::Truncated);
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let (b2, b3) = (buf[2], buf[3]);
        let header = Header {
            id,
            flags: Flags {
                qr: b2 & 0x80 != 0,
                aa: b2 & 0x04 != 0,
                tc: b2 & 0x02 != 0,
                rd: b2 & 0x01 != 0,
                ra: b3 & 0x80 != 0,
            },
            opcode: Opcode::from_u8((b2 >> 3) & 0x0F),
            rcode: Rcode::from_u8(b3 & 0x0F),
        };
        let count = |i: usize| u16::from_be_bytes([buf[4 + 2 * i], buf[5 + 2 * i]]) as usize;
        let (qd, an, ns, ar) = (count(0), count(1), count(2), count(3));

        // Count sanity: even maximally compressed, a question costs 5 bytes
        // (pointer name + type/class) and a record 11 (pointer name + fixed
        // part + empty RDATA). Headers claiming more entries than the
        // remaining bytes could possibly hold are rejected up front, so a
        // 12-byte flood with inflated counts costs O(1), not 4×65535
        // aborted section parses.
        let floor = qd * 5 + (an + ns + ar) * 11;
        if floor > buf.len() - 12 {
            return Err(WireError::Truncated);
        }

        let mut pos = 12;
        let mut questions = Vec::with_capacity(qd.min(32));
        for _ in 0..qd {
            let (name, p) = Name::decode(buf, pos)?;
            let fixed = buf.get(p..p + 4).ok_or(WireError::Truncated)?;
            questions.push(Question {
                name,
                qtype: RecordType::from_u16(u16::from_be_bytes([fixed[0], fixed[1]])),
                qclass: Class::from_u16(u16::from_be_bytes([fixed[2], fixed[3]])),
            });
            pos = p + 4;
        }
        let decode_rrs = |n: usize, pos: &mut usize| -> Result<Vec<ResourceRecord>, WireError> {
            let mut rrs = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let (name, p) = Name::decode(buf, *pos)?;
                let fixed = buf.get(p..p + 10).ok_or(WireError::Truncated)?;
                let rtype = RecordType::from_u16(u16::from_be_bytes([fixed[0], fixed[1]]));
                let class = Class::from_u16(u16::from_be_bytes([fixed[2], fixed[3]]));
                let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
                let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize;
                let rdata = RData::decode(rtype, buf, p + 10, rdlen)?;
                rrs.push(ResourceRecord { name, class, ttl, rdata });
                *pos = p + 10 + rdlen;
            }
            Ok(rrs)
        };
        let answers = decode_rrs(an, &mut pos)?;
        let authorities = decode_rrs(ns, &mut pos)?;
        let additionals = decode_rrs(ar, &mut pos)?;
        Ok(Message { header, questions, answers, authorities, additionals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn sample_response() -> Message {
        let query = Message::query(0x1234, n("appldnld.apple.com"), RecordType::A);
        let mut resp = Message::response_to(&query, Rcode::NoError);
        resp.answers = vec![
            ResourceRecord::new(
                n("appldnld.apple.com"),
                21600,
                RData::Cname(n("appldnld.apple.com.akadns.net")),
            ),
            ResourceRecord::new(
                n("appldnld.apple.com.akadns.net"),
                120,
                RData::Cname(n("appldnld.g.applimg.com")),
            ),
            ResourceRecord::new(
                n("appldnld.g.applimg.com"),
                15,
                RData::Cname(n("a.gslb.applimg.com")),
            ),
            ResourceRecord::new(
                n("a.gslb.applimg.com"),
                20,
                RData::A(Ipv4Addr::new(17, 253, 37, 16)),
            ),
        ];
        resp
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(7, n("mesu.apple.com"), RecordType::A);
        let bytes = q.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, q);
        assert!(back.header.flags.rd);
        assert!(!back.header.flags.qr);
    }

    #[test]
    fn response_roundtrip_with_cname_chain() {
        let resp = sample_response();
        let bytes = resp.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.answers.len(), 4);
    }

    #[test]
    fn compression_shrinks_output() {
        let resp = sample_response();
        let compressed = resp.encode().unwrap().len();
        // Sum of uncompressed wire lengths of all names as a lower bound on
        // the uncompressed size.
        let uncompressed: usize = resp
            .questions
            .iter()
            .map(|q| q.name.wire_len())
            .chain(resp.answers.iter().map(|a| {
                a.name.wire_len()
                    + match &a.rdata {
                        RData::Cname(c) => c.wire_len(),
                        _ => 4,
                    }
            }))
            .sum::<usize>()
            + 12
            + 4
            + resp.answers.len() * 10;
        assert!(
            compressed < uncompressed,
            "compression should save space: {compressed} vs {uncompressed}"
        );
    }

    #[test]
    fn decode_rejects_short_header() {
        assert_eq!(Message::decode(&[0; 11]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn decode_rejects_missing_records() {
        let mut q = Message::query(1, n("a.com"), RecordType::A).encode().unwrap();
        // Claim one answer that isn't present.
        q[7] = 1;
        assert_eq!(Message::decode(&q).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn rcode_roundtrip() {
        for rc in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::NotImp,
            Rcode::Refused,
        ] {
            let q = Message::query(9, n("x.com"), RecordType::A);
            let mut resp = Message::response_to(&q, rc);
            resp.header.flags.aa = true;
            let back = Message::decode(&resp.encode().unwrap()).unwrap();
            assert_eq!(back.header.rcode, rc);
            assert!(back.header.flags.aa);
            assert!(back.header.flags.qr);
        }
    }

    #[test]
    fn response_echoes_question_and_id() {
        let q = Message::query(0xBEEF, n("appldnld.apple.com"), RecordType::Aaaa);
        let resp = Message::response_to(&q, Rcode::NoError);
        assert_eq!(resp.header.id, 0xBEEF);
        assert_eq!(resp.questions, q.questions);
        assert!(resp.answers.is_empty(), "AAAA gets an empty answer from Apple's mapping");
    }

    #[test]
    fn ptr_record_roundtrip_in_message() {
        let q = Message::query(3, n("8.37.253.17.in-addr.arpa"), RecordType::Ptr);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.answers.push(ResourceRecord::new(
            n("8.37.253.17.in-addr.arpa"),
            3600,
            RData::Ptr(n("usnyc3-vip-bx-008.aaplimg.com")),
        ));
        let back = Message::decode(&resp.encode().unwrap()).unwrap();
        assert_eq!(back, resp);
    }
}
