//! Property tests: arbitrary well-formed DNS messages survive an
//! encode→decode round trip, and the decoder never panics on garbage.

use mcdn_dnswire::{Flags, Header, Message, Name, Opcode, Question, RData, Rcode, RecordType, ResourceRecord};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{1,12}(-[a-z0-9]{1,8})?").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..6)
        .prop_map(|labels| Name::parse(&labels.join(".")).expect("generated name is valid"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Ptr),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..4)
            .prop_map(RData::Txt),
    ]
}

fn arb_rr() -> impl Strategy<Value = ResourceRecord> {
    (arb_name(), 0u32..1_000_000, arb_rdata())
        .prop_map(|(name, ttl, rdata)| ResourceRecord::new(name, ttl, rdata))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(arb_name(), 0..3),
        proptest::collection::vec(arb_rr(), 0..6),
        proptest::collection::vec(arb_rr(), 0..3),
        proptest::collection::vec(arb_rr(), 0..3),
    )
        .prop_map(|(id, qr, rd, qnames, answers, authorities, additionals)| Message {
            header: Header {
                id,
                flags: Flags { qr, rd, ..Flags::default() },
                opcode: Opcode::Query,
                rcode: Rcode::NoError,
            },
            questions: qnames
                .into_iter()
                .map(|n| Question::new(n, RecordType::A))
                .collect(),
            answers,
            authorities,
            additionals,
        })
}

proptest! {
    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let bytes = msg.encode().expect("well-formed message encodes");
        let back = Message::decode(&bytes).expect("encoded message decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&bytes); // must not panic
    }

    #[test]
    fn name_roundtrip(name in arb_name()) {
        let mut buf = Vec::new();
        name.encode_uncompressed(&mut buf);
        let (back, end) = Name::decode(&buf, 0).expect("decodes");
        prop_assert_eq!(&back, &name);
        prop_assert_eq!(end, buf.len());
        // String parse round trip too.
        prop_assert_eq!(Name::parse(&name.to_string()).unwrap(), name);
    }

    #[test]
    fn decoding_truncated_valid_message_errors_not_panics(
        msg in arb_message(),
        cut in 0usize..64,
    ) {
        let bytes = msg.encode().unwrap();
        if cut < bytes.len() {
            let _ = Message::decode(&bytes[..bytes.len() - cut - 1]);
        }
    }
}
