//! Table-driven edge cases for wire-format name decoding.
//!
//! These pin the boundary behaviour of `Name::decode` — the exact label
//! and name caps of RFC 1035 §2.3.4, compression-pointer chain handling,
//! and every rejection class an adversarial message can trigger. The
//! fuzzer (`mcdn-fuzzwire`) exercises the same decoder with random
//! mutations; this table keeps the *specific* boundaries pinned so a
//! regression is named, not just "a fuzz failure".

use mcdn_dnswire::{Name, WireError};

/// One decode expectation: the raw message bytes, the start offset, and
/// either the decoded (name, resume position) or the exact error.
struct Case {
    desc: &'static str,
    buf: Vec<u8>,
    pos: usize,
    want: Result<(Name, usize), WireError>,
}

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

/// A label of `len` repeated bytes, length octet included.
fn label(byte: u8, len: usize) -> Vec<u8> {
    let mut out = vec![len as u8];
    out.extend(std::iter::repeat_n(byte, len));
    out
}

/// Wire bytes for a name made of `lens` label lengths (filled with 'a',
/// 'b', … per label), plus the terminating zero.
fn wire_name(lens: &[usize]) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, &len) in lens.iter().enumerate() {
        out.extend(label(b'a' + (i as u8 % 26), len));
    }
    out.push(0);
    out
}

fn cases() -> Vec<Case> {
    let mut cases = Vec::new();

    // -- Root label ---------------------------------------------------
    cases.push(Case {
        desc: "bare root label",
        buf: vec![0],
        pos: 0,
        want: Ok((Name::root(), 1)),
    });
    cases.push(Case {
        desc: "root label mid-buffer",
        buf: vec![0xFF, 0xFF, 0],
        pos: 2,
        want: Ok((Name::root(), 3)),
    });

    // -- Label length cap (63) ---------------------------------------
    let max_label = wire_name(&[63]);
    let max_label_name = Name::from_labels([vec![b'a'; 63]]).unwrap();
    cases.push(Case {
        desc: "63-byte label is the maximum",
        buf: max_label.clone(),
        pos: 0,
        want: Ok((max_label_name, max_label.len())),
    });
    // A 64-byte "label" is not a long label: 64 = 0b0100_0000 is a
    // reserved label type on the wire.
    cases.push(Case {
        desc: "64-byte label length is a reserved label type",
        buf: wire_name(&[64]),
        pos: 0,
        want: Err(WireError::BadLabelType),
    });
    cases.push(Case {
        desc: "reserved 0b10 label type",
        buf: vec![0x80, 0x01, 0],
        pos: 0,
        want: Err(WireError::BadLabelType),
    });

    // -- Whole-name cap (255 wire bytes, terminator included) ---------
    // 63+1 + 63+1 + 63+1 + 61+1 + 1 = 255: exactly at the cap.
    let at_cap = wire_name(&[63, 63, 63, 61]);
    assert_eq!(at_cap.len(), 255);
    let at_cap_name = Name::from_labels([
        vec![b'a'; 63],
        vec![b'b'; 63],
        vec![b'c'; 63],
        vec![b'd'; 61],
    ])
    .unwrap();
    cases.push(Case {
        desc: "255-byte name is accepted",
        buf: at_cap.clone(),
        pos: 0,
        want: Ok((at_cap_name, 255)),
    });
    let over_cap = wire_name(&[63, 63, 63, 62]);
    assert_eq!(over_cap.len(), 256);
    cases.push(Case {
        desc: "256-byte name exceeds the cap",
        buf: over_cap,
        pos: 0,
        want: Err(WireError::NameTooLong),
    });
    // The cap also applies to names assembled across pointers: a chain
    // of 62-byte labels each pointing at the previous grows past 255.
    {
        let mut buf = wire_name(&[63, 63, 63]); // 192 wire bytes + zero
        let tail_at = buf.len();
        buf.extend(label(b'z', 63));
        buf.push(0xC0);
        buf.push(0);
        cases.push(Case {
            desc: "pointer-assembled name exceeds the cap",
            buf,
            pos: tail_at,
            want: Err(WireError::NameTooLong),
        });
    }

    // -- Pointer-to-pointer chains ------------------------------------
    {
        // "apple.com" at 0; "www" + pointer→0 at 11; pointer→11 at 16.
        let mut buf = Vec::new();
        n("apple.com").encode_uncompressed(&mut buf);
        let www_at = buf.len();
        buf.push(3);
        buf.extend_from_slice(b"www");
        buf.push(0xC0);
        buf.push(0); // → "apple.com" at offset 0
        let chain_at = buf.len();
        buf.push(0xC0);
        buf.push(www_at as u8);
        cases.push(Case {
            desc: "pointer to a name that itself ends in a pointer",
            buf,
            pos: chain_at,
            want: Ok((n("www.apple.com"), chain_at + 2)),
        });
    }

    // -- Pointer offset past the message end --------------------------
    // Any in-message offset ≥ the pointer's own position is rejected as
    // a (potential) forward loop; an offset past the end of the buffer
    // is the same violation taken further.
    cases.push(Case {
        desc: "pointer past message end",
        buf: vec![0xC3, 0xE8], // → offset 1000 in a 2-byte message
        pos: 0,
        want: Err(WireError::BadPointer),
    });
    cases.push(Case {
        desc: "pointer to itself",
        buf: vec![0xC0, 0x00],
        pos: 0,
        want: Err(WireError::BadPointer),
    });
    cases.push(Case {
        desc: "forward pointer",
        buf: vec![0xC0, 0x02, 0x00],
        pos: 0,
        want: Err(WireError::BadPointer),
    });
    cases.push(Case {
        desc: "pointer missing its second octet",
        buf: vec![0xC0],
        pos: 0,
        want: Err(WireError::Truncated),
    });

    // -- Truncation ----------------------------------------------------
    cases.push(Case {
        desc: "label runs past the buffer",
        buf: vec![5, b'a', b'b'],
        pos: 0,
        want: Err(WireError::Truncated),
    });
    cases.push(Case {
        desc: "missing terminator",
        buf: vec![1, b'a'],
        pos: 0,
        want: Err(WireError::Truncated),
    });
    cases.push(Case {
        desc: "empty buffer",
        buf: Vec::new(),
        pos: 0,
        want: Err(WireError::Truncated),
    });
    cases.push(Case {
        desc: "start offset past the buffer",
        buf: vec![0],
        pos: 7,
        want: Err(WireError::Truncated),
    });

    cases
}

#[test]
fn name_decode_edge_table() {
    for case in cases() {
        let got = Name::decode(&case.buf, case.pos);
        assert_eq!(got, case.want, "case: {}", case.desc);
    }
}

#[test]
fn bounded_pointer_chasing_rejects_long_backward_chains() {
    // 200 chained backward pointers: each one is legal in isolation
    // (strictly backward), but the chain exceeds the hop budget, so the
    // decoder must bail with BadPointer instead of walking it.
    let mut buf = vec![1, b'x', 0]; // "x" at offset 0
    let mut prev = 0u16;
    let mut last = 0usize;
    for _ in 0..200 {
        last = buf.len();
        buf.push(0xC0 | (prev >> 8) as u8);
        buf.push((prev & 0xFF) as u8);
        prev = last as u16;
    }
    assert_eq!(Name::decode(&buf, last).unwrap_err(), WireError::BadPointer);
    // A short chain of the same shape decodes fine.
    let mut ok = vec![1, b'x', 0];
    ok.push(0xC0);
    ok.push(0);
    ok.push(0xC0);
    ok.push(3);
    assert_eq!(Name::decode(&ok, 5).unwrap(), (n("x"), 7));
}
