//! Deterministic fault injection for the measurement plane.
//!
//! Real measurement campaigns do not observe a clean world: RIPE Atlas
//! probes lose queries, authoritative zones SERVFAIL under load or go lame
//! for hours, NetFlow exporters drop records on top of packet sampling, and
//! SNMP pollers miss 5-minute cycles. The paper's vantage points all suffer
//! these artifacts, so the reproduction needs a way to subject its synthetic
//! measurement plane to the same imperfections — *reproducibly*.
//!
//! This crate provides that layer:
//!
//! * [`FaultProfile`] — a bundle of fault-rate knobs whose per-event
//!   decisions are pure functions of `(profile seed, event key, time)`,
//!   evaluated by hashing. No RNG state is threaded anywhere, so two runs
//!   with the same seed produce bit-identical fault patterns, and a
//!   zero-rate profile ([`FaultProfile::none`]) is exactly a no-op.
//! * [`QueryFault`] — the transient outcomes an upstream DNS query can
//!   suffer (SERVFAIL or timeout).
//! * [`RetryPolicy`] — capped exponential backoff for probe-side retries.
//! * [`coverage`] — helpers to quantify and repair gaps in telemetry
//!   series (interpolation with explicit "this bin was filled" flags).
//!
//! The crate is deliberately free of simulator dependencies (only
//! `mcdn-geo` for the time axis): callers adapt a profile to their own
//! domain by hashing whatever identifies an event (zone name, probe id,
//! link id) into the `u64` keys these APIs take.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::net::Ipv4Addr;

use mcdn_geo::time::{Duration, SimTime};

pub mod coverage;

/// FNV-1a over a byte slice — the workspace-standard pure hash for
/// deterministic decisions (same construction as probe availability).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A streaming FNV-1a hasher producing values identical to [`fnv64`] over
/// the concatenation of everything fed to it — without materializing that
/// concatenation. It implements [`core::fmt::Write`], so `write!(h, "{x}")`
/// hashes a value's `Display` output with no intermediate `String`; FNV is
/// strictly byte-serial, so however the formatter chunks its writes, the
/// result equals hashing `x.to_string().as_bytes()`.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher in the FNV-1a initial state (`fnv64(b"")`).
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// A hasher resumed from a previously [`finish`](Fnv64::finish)ed
    /// digest. FNV-1a's state *is* its digest, so
    /// `Fnv64::with_state(h.finish())` continues the stream exactly where
    /// `h` left off — this lets callers precompute the hash of a stable
    /// prefix (say, a DNS name's `Display` form) once and later fold in
    /// per-query suffixes without re-hashing the prefix.
    pub fn with_state(state: u64) -> Fnv64 {
        Fnv64(state)
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The hash of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl core::fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> core::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// One SplitMix64 step — used to decorrelate hash streams drawn from the
/// same key material for different decisions.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds a list of 64-bit words into one well-mixed decision hash.
fn hash_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        h = mix(h ^ w);
    }
    h
}

/// Maps a hash to the unit interval `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A transient fault injected into one upstream DNS query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryFault {
    /// The authoritative server answered SERVFAIL (overload, lame
    /// delegation, or a baseline server-side failure).
    ServFail,
    /// The query or its response was lost, or the answer arrived too late
    /// to be useful — the client sees a timeout either way.
    Timeout,
}

/// A Byzantine mutation applied to one upstream DNS answer.
///
/// Where [`QueryFault`] models *absent* answers, these model *wrong* ones:
/// the shapes a resolver sees from spoofed, misconfigured, or outright
/// hostile authoritative servers. Which mutation (if any) hits a given
/// query is a pure function of `(profile, zone, query, attempt, time)` —
/// see [`FaultProfile::answer_mutation`] — so adversarial campaigns stay
/// bit-reproducible and journal-resumable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnswerMutation {
    /// The answer carries an extra A record steering the queried name at
    /// an attacker-controlled prefix (classic cache-poisoning payload).
    SpoofA,
    /// The answer carries an out-of-bailiwick NS record delegating the
    /// zone to an attacker name server (Kaminsky-style delegation hijack).
    InjectNs,
    /// The answer arrives truncated/garbled beyond use: the resolver must
    /// treat it as a malformed-response error, not ingest a partial RRset.
    Truncate,
    /// All TTLs in the answer are inflated by
    /// [`FaultProfile::ttl_inflation_factor`], trying to pin stale or
    /// poisoned data in caches far beyond its legitimate lifetime.
    InflateTtl,
}

/// A deterministic bundle of measurement-plane fault rates.
///
/// Every decision method is a pure function of the profile, its `seed`, and
/// the caller-supplied event keys — no mutable state, no wall clock. The
/// all-zero profile ([`FaultProfile::none`]) answers "no fault" to every
/// question, making fault-aware code paths bit-identical to fault-free
/// ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Seed decorrelating this profile's decisions from other profiles
    /// with the same rates.
    pub seed: u64,
    /// Probability that a single upstream DNS query (or its answer) is
    /// lost in transit, observed as a timeout. Per attempt, so retries
    /// redraw independently.
    pub query_loss: f64,
    /// Baseline probability of SERVFAIL from an authoritative zone,
    /// independent of load.
    pub servfail_floor: f64,
    /// Additional SERVFAIL probability per unit of authoritative-zone
    /// load: an overloaded zone at load `l` fails with probability
    /// `servfail_floor + servfail_per_load * l` (clamped to `[0, 1]`).
    pub servfail_per_load: f64,
    /// Mean hours between lame-delegation windows per zone (0 disables
    /// lame windows entirely).
    pub lame_every_hours: u32,
    /// Length of one lame-delegation window, in hours. While a zone is
    /// lame, every query to it SERVFAILs.
    pub lame_hours: u32,
    /// Median simulated upstream query latency in milliseconds. Purely
    /// informational unless `slow_timeout_ms` is set.
    pub latency_median_ms: f64,
    /// Latency tail heaviness: the 99th-percentile latency is roughly
    /// `latency_median_ms * latency_tail`. Values `<= 1` mean no tail.
    pub latency_tail: f64,
    /// Queries whose drawn latency exceeds this many milliseconds count as
    /// timeouts (0 disables latency-induced timeouts).
    pub slow_timeout_ms: f64,
    /// Probability that a sampled NetFlow record is lost between exporter
    /// and collector (on top of packet sampling).
    pub netflow_export_loss: f64,
    /// Probability that a link misses one 5-minute SNMP poll cycle.
    pub snmp_gap: f64,
    /// Mean hours between full-outage windows per CDN site (0 disables site
    /// outages). While a site is down it serves nothing and its health
    /// probes fail.
    pub site_outage_every_hours: u32,
    /// Length of one site-outage window, in hours.
    pub site_outage_hours: u32,
    /// Mean hours between capacity-brownout windows per CDN site (0
    /// disables brownouts).
    pub brownout_every_hours: u32,
    /// Length of one brownout window, in hours.
    pub brownout_hours: u32,
    /// Fraction of a site's capacity lost during a brownout window, in
    /// `[0, 1]` (0.6 means the site keeps 40 % of its capacity).
    pub brownout_depth: f64,
    /// Mean hours between authoritative-NS outage windows per zone (0
    /// disables NS outages). A dark zone answers nothing — every upstream
    /// query to it times out.
    pub ns_outage_every_hours: u32,
    /// Length of one NS-outage window, in hours.
    pub ns_outage_hours: u32,
    /// Load-coupled degradation of Apple's own CDN: for utilization `u`,
    /// effective capacity is scaled by `1 / (1 + k * max(0, u - 1))` where
    /// `k` is this knob (0 disables the coupling).
    pub apple_degrade_per_load: f64,
    /// Targeted control-plane kill: entity key whose infrastructure is
    /// scripted down during `[kill_from, kill_until)`. 0 disables the kill
    /// (so a zero profile stays inert for every key).
    pub kill_key: u64,
    /// Start of the targeted-kill window (seconds since epoch).
    pub kill_from: SimTime,
    /// End of the targeted-kill window (exclusive).
    pub kill_until: SimTime,
    /// Health-telemetry blackout window start: while
    /// `[blackout_from, blackout_until)` is in force, *every* health probe
    /// fails, modelling total loss of the control plane's monitoring.
    pub blackout_from: SimTime,
    /// End of the health-telemetry blackout window (exclusive).
    pub blackout_until: SimTime,
    /// Probability that one upstream answer is mutated by an adversary
    /// (0 disables answer mutations entirely; which kind fires is drawn
    /// from the enabled `mutate_*` flags).
    pub mutation_rate: f64,
    /// Enables [`AnswerMutation::SpoofA`] draws.
    pub mutate_spoof_a: bool,
    /// Enables [`AnswerMutation::InjectNs`] draws.
    pub mutate_inject_ns: bool,
    /// Enables [`AnswerMutation::Truncate`] draws.
    pub mutate_truncate: bool,
    /// Enables [`AnswerMutation::InflateTtl`] draws.
    pub mutate_inflate_ttl: bool,
    /// First two octets of the attacker-controlled /16 that spoofed A
    /// records point into (default 198.18 — the RFC 2544 benchmark range,
    /// guaranteed disjoint from every modeled CDN prefix).
    pub attacker_prefix: [u8; 2],
    /// Multiplier applied to answer TTLs by [`AnswerMutation::InflateTtl`]
    /// (saturating; 0 is treated as 1, i.e. no inflation).
    pub ttl_inflation_factor: u32,
    /// Whether resolvers should enforce bailiwick rules against mutated
    /// answers. On (the default) models a hardened resolver; off models a
    /// naive one, exposing the mis-mapping delta the poisoning sweep
    /// measures.
    pub enforce_bailiwick: bool,
}

impl FaultProfile {
    /// The fault-free profile: every decision method returns "no fault",
    /// so campaigns run exactly as they would without the fault layer.
    pub const fn none() -> FaultProfile {
        FaultProfile {
            seed: 0,
            query_loss: 0.0,
            servfail_floor: 0.0,
            servfail_per_load: 0.0,
            lame_every_hours: 0,
            lame_hours: 0,
            latency_median_ms: 0.0,
            latency_tail: 0.0,
            slow_timeout_ms: 0.0,
            netflow_export_loss: 0.0,
            snmp_gap: 0.0,
            site_outage_every_hours: 0,
            site_outage_hours: 0,
            brownout_every_hours: 0,
            brownout_hours: 0,
            brownout_depth: 0.0,
            ns_outage_every_hours: 0,
            ns_outage_hours: 0,
            apple_degrade_per_load: 0.0,
            kill_key: 0,
            kill_from: SimTime(0),
            kill_until: SimTime(0),
            blackout_from: SimTime(0),
            blackout_until: SimTime(0),
            mutation_rate: 0.0,
            mutate_spoof_a: false,
            mutate_inject_ns: false,
            mutate_truncate: false,
            mutate_inflate_ttl: false,
            attacker_prefix: [198, 18],
            ttl_inflation_factor: 0,
            enforce_bailiwick: true,
        }
    }

    /// A moderately hostile profile representative of real campaign
    /// conditions: ~1 % query loss, load-sensitive SERVFAILs, occasional
    /// multi-hour lame windows, a heavy latency tail with a 5 s timeout,
    /// 2 % NetFlow export loss, and 3 % SNMP poll gaps.
    pub const fn realistic(seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            query_loss: 0.01,
            servfail_floor: 0.002,
            servfail_per_load: 0.04,
            lame_every_hours: 96,
            lame_hours: 2,
            latency_median_ms: 35.0,
            latency_tail: 40.0,
            slow_timeout_ms: 5_000.0,
            netflow_export_loss: 0.02,
            snmp_gap: 0.03,
            ..FaultProfile::none()
        }
    }

    /// An infrastructure-chaos profile on top of [`FaultProfile::none`]:
    /// the *measurement* plane stays clean while the *measured* system
    /// suffers periodic site outages, capacity brownouts, authoritative-NS
    /// dark windows, and load-coupled degradation of Apple's own CDN.
    pub const fn infrastructure(seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            site_outage_every_hours: 48,
            site_outage_hours: 3,
            brownout_every_hours: 24,
            brownout_hours: 4,
            brownout_depth: 0.5,
            ns_outage_every_hours: 72,
            ns_outage_hours: 2,
            apple_degrade_per_load: 0.3,
            ..FaultProfile::none()
        }
    }

    /// An adversarial-answer profile: 15 % of upstream answers are mutated
    /// with one of the four [`AnswerMutation`] kinds, TTLs inflate 10000×
    /// when hit, and the attacker squats the 198.18.0.0/16 benchmark range.
    /// Bailiwick enforcement stays on; flip it off with
    /// [`FaultProfile::with_bailiwick_enforcement`] to measure what a naive
    /// resolver would ingest.
    pub const fn poisoning(seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            mutation_rate: 0.15,
            mutate_spoof_a: true,
            mutate_inject_ns: true,
            mutate_truncate: true,
            mutate_inflate_ttl: true,
            ttl_inflation_factor: 10_000,
            ..FaultProfile::none()
        }
    }

    /// Builder: turns resolver-side bailiwick enforcement on or off.
    pub const fn with_bailiwick_enforcement(mut self, on: bool) -> FaultProfile {
        self.enforce_bailiwick = on;
        self
    }

    /// Builder: scripts a targeted control-plane kill of the entity hashed
    /// to `key` during `[from, until)` — e.g. "kill the Limelight load
    /// balancer mid-event".
    pub const fn with_target_kill(mut self, key: u64, from: SimTime, until: SimTime) -> FaultProfile {
        self.kill_key = key;
        self.kill_from = from;
        self.kill_until = until;
        self
    }

    /// Builder: scripts a health-telemetry blackout during `[from, until)`,
    /// in which every health probe fails regardless of actual site state.
    pub const fn with_blackout(mut self, from: SimTime, until: SimTime) -> FaultProfile {
        self.blackout_from = from;
        self.blackout_until = until;
        self
    }

    /// Returns this profile with a different decision seed — used to give
    /// independent fault patterns to e.g. the global and ISP campaigns.
    pub const fn with_seed(mut self, seed: u64) -> FaultProfile {
        self.seed = seed;
        self
    }

    /// An order-stable digest of every knob, field by declared field.
    ///
    /// Because the profile is the fault layer's entire "RNG state" (all
    /// randomness is pure hashing of profile + keys), this digest *is* the
    /// exported fault-model cursor: equal digests guarantee an identical
    /// fault stream, which is what a resumable campaign folds into its
    /// config fingerprint to refuse resuming under a different model.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.update(&self.seed.to_le_bytes());
        h.update(&self.query_loss.to_bits().to_le_bytes());
        h.update(&self.servfail_floor.to_bits().to_le_bytes());
        h.update(&self.servfail_per_load.to_bits().to_le_bytes());
        h.update(&self.lame_every_hours.to_le_bytes());
        h.update(&self.lame_hours.to_le_bytes());
        h.update(&self.latency_median_ms.to_bits().to_le_bytes());
        h.update(&self.latency_tail.to_bits().to_le_bytes());
        h.update(&self.slow_timeout_ms.to_bits().to_le_bytes());
        h.update(&self.netflow_export_loss.to_bits().to_le_bytes());
        h.update(&self.snmp_gap.to_bits().to_le_bytes());
        h.update(&self.site_outage_every_hours.to_le_bytes());
        h.update(&self.site_outage_hours.to_le_bytes());
        h.update(&self.brownout_every_hours.to_le_bytes());
        h.update(&self.brownout_hours.to_le_bytes());
        h.update(&self.brownout_depth.to_bits().to_le_bytes());
        h.update(&self.ns_outage_every_hours.to_le_bytes());
        h.update(&self.ns_outage_hours.to_le_bytes());
        h.update(&self.apple_degrade_per_load.to_bits().to_le_bytes());
        h.update(&self.kill_key.to_le_bytes());
        h.update(&self.kill_from.as_secs().to_le_bytes());
        h.update(&self.kill_until.as_secs().to_le_bytes());
        h.update(&self.blackout_from.as_secs().to_le_bytes());
        h.update(&self.blackout_until.as_secs().to_le_bytes());
        h.update(&self.mutation_rate.to_bits().to_le_bytes());
        h.update(&[
            self.mutate_spoof_a as u8,
            self.mutate_inject_ns as u8,
            self.mutate_truncate as u8,
            self.mutate_inflate_ttl as u8,
        ]);
        h.update(&self.attacker_prefix);
        h.update(&self.ttl_inflation_factor.to_le_bytes());
        h.update(&[self.enforce_bailiwick as u8]);
        h.finish()
    }

    /// True when every rate is zero, i.e. no decision method can ever
    /// report a fault.
    pub fn is_quiet(&self) -> bool {
        self.query_loss <= 0.0
            && self.servfail_floor <= 0.0
            && self.servfail_per_load <= 0.0
            && (self.lame_every_hours == 0 || self.lame_hours == 0)
            && (self.slow_timeout_ms <= 0.0 || self.latency_median_ms <= 0.0)
            && self.netflow_export_loss <= 0.0
            && self.snmp_gap <= 0.0
            && !self.has_answer_mutations()
            && !self.has_infrastructure_faults()
    }

    /// A reuse-versioning digest of the fault stream visible at `now`.
    ///
    /// Quiet profiles (no decision method can ever fault and no answer
    /// can ever be mutated) return the plain [`FaultProfile::digest`] —
    /// constant across time, which lets an incremental engine treat the
    /// fault layer as an unchanged input and replay prior resolutions.
    /// Any profile that can fire folds `now` into the digest instead:
    /// fault draws are keyed on query time, so the stream a resolution
    /// observes is different every round and reuse must be disabled.
    /// Conservative (a faultable-but-silent window still invalidates),
    /// never wrong.
    pub fn reuse_digest(&self, now: SimTime) -> u64 {
        let base = self.digest();
        if self.is_quiet() {
            return base;
        }
        let mut h = Fnv64::with_state(base);
        h.update(&now.as_secs().to_le_bytes());
        h.finish()
    }

    /// True when any [`AnswerMutation`] kind can ever fire.
    pub fn has_answer_mutations(&self) -> bool {
        self.mutation_rate > 0.0
            && (self.mutate_spoof_a
                || self.mutate_inject_ns
                || self.mutate_truncate
                || self.mutate_inflate_ttl)
    }

    /// True when this profile can make a campaign shard *unwind* (as
    /// opposed to merely returning faulted values). Every current fault
    /// family fails measurements — timeouts, SERVFAILs, forged records,
    /// telemetry gaps — and never panics the worker, so supervised
    /// engines can skip the pristine shard clone and take the zero-copy
    /// fail-fast path. A future fault family that aborts workers mid-
    /// shard must return `true` here to get pristine-restore supervision.
    pub fn may_panic(&self) -> bool {
        false
    }

    /// True when any *infrastructure* fault kind (site outage, brownout,
    /// NS outage, load-coupled degradation, targeted kill, telemetry
    /// blackout) can ever fire.
    pub fn has_infrastructure_faults(&self) -> bool {
        (self.site_outage_every_hours > 0 && self.site_outage_hours > 0)
            || (self.brownout_every_hours > 0 && self.brownout_hours > 0 && self.brownout_depth > 0.0)
            || (self.ns_outage_every_hours > 0 && self.ns_outage_hours > 0)
            || self.apple_degrade_per_load > 0.0
            || (self.kill_key != 0 && self.kill_until > self.kill_from)
            || self.blackout_until > self.blackout_from
    }

    /// Shared window-placement rule: whether `key`'s entity is inside one
    /// of its pseudo-random fault windows at `now`. Windows are
    /// `span_hours` long and recur on average every `every_hours`, placed
    /// per entity so different entities fail at different times.
    fn in_window(&self, key: u64, now: SimTime, every_hours: u32, span_hours: u32, salt: u64) -> bool {
        if every_hours == 0 || span_hours == 0 {
            return false;
        }
        let span = span_hours.max(1) as u64;
        let cycles = (every_hours as u64 / span).max(1);
        let window = now.0 / 3600 / span;
        hash_words(&[self.seed, key, window, salt]).is_multiple_of(cycles)
    }

    /// Whether `zone_key`'s zone is inside a lame-delegation window at
    /// `now`. Windows are `lame_hours` long, occur on average every
    /// `lame_every_hours`, and are placed pseudo-randomly per zone so
    /// different zones go lame at different times.
    pub fn zone_is_lame(&self, zone_key: u64, now: SimTime) -> bool {
        self.in_window(zone_key, now, self.lame_every_hours, self.lame_hours, 0x1a3e)
    }

    /// Whether the entity hashed to `key` is inside its scripted
    /// targeted-kill window at `now`.
    pub fn target_killed(&self, key: u64, now: SimTime) -> bool {
        self.kill_key != 0 && key == self.kill_key && now >= self.kill_from && now < self.kill_until
    }

    /// Whether the health-telemetry blackout is in force at `now`.
    pub fn health_blackout(&self, now: SimTime) -> bool {
        now >= self.blackout_from && now < self.blackout_until
    }

    /// Whether the CDN site hashed to `site_key` is fully down at `now`
    /// (pseudo-random outage window or scripted targeted kill).
    pub fn site_is_down(&self, site_key: u64, now: SimTime) -> bool {
        self.target_killed(site_key, now)
            || self.in_window(site_key, now, self.site_outage_every_hours, self.site_outage_hours, 0x51fe)
    }

    /// The fraction of its modeled capacity the site hashed to `site_key`
    /// retains at `now`: 0 while down, `1 - brownout_depth` inside a
    /// brownout window, 1 otherwise.
    pub fn site_capacity_factor(&self, site_key: u64, now: SimTime) -> f64 {
        if self.site_is_down(site_key, now) {
            return 0.0;
        }
        if self.in_window(site_key, now, self.brownout_every_hours, self.brownout_hours, 0xb0bf) {
            (1.0 - self.brownout_depth).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// Whether the authoritative NS for the zone hashed to `zone_key` is
    /// dark (unreachable — queries time out) at `now`.
    pub fn ns_is_dark(&self, zone_key: u64, now: SimTime) -> bool {
        self.target_killed(zone_key, now)
            || self.in_window(zone_key, now, self.ns_outage_every_hours, self.ns_outage_hours, 0xd4a7)
    }

    /// Load-coupled degradation of Apple's own CDN: the capacity factor at
    /// candidate utilization `util` (1 at or below capacity, shrinking as
    /// overload deepens when `apple_degrade_per_load` is set).
    pub fn apple_load_factor(&self, util: f64) -> f64 {
        if self.apple_degrade_per_load <= 0.0 {
            return 1.0;
        }
        1.0 / (1.0 + self.apple_degrade_per_load * (util - 1.0).max(0.0))
    }

    /// The fault, if any, suffered by one upstream query.
    ///
    /// * `zone_key` — hash identifying the authoritative zone asked.
    /// * `query_key` — hash identifying the querying client and name.
    /// * `attempt` — 0-based retry counter; retries redraw independently.
    /// * `now` — campaign time of the query.
    /// * `zone_load` — the zone operator's current load (0 = idle); scales
    ///   the SERVFAIL probability by `servfail_per_load`.
    pub fn upstream_fault(
        &self,
        zone_key: u64,
        query_key: u64,
        attempt: u32,
        now: SimTime,
        zone_load: f64,
    ) -> Option<QueryFault> {
        if self.zone_is_lame(zone_key, now) {
            return Some(QueryFault::ServFail);
        }
        let base = [self.seed, zone_key, query_key, now.0, attempt as u64];
        if self.query_loss > 0.0 {
            let h = hash_words(&[base[0], base[1], base[2], base[3], base[4], 0x105e]);
            if unit(h) < self.query_loss {
                return Some(QueryFault::Timeout);
            }
        }
        if self.slow_timeout_ms > 0.0
            && self.query_latency_ms(zone_key, query_key, attempt, now) > self.slow_timeout_ms
        {
            return Some(QueryFault::Timeout);
        }
        let p_servfail =
            (self.servfail_floor + self.servfail_per_load * zone_load.max(0.0)).clamp(0.0, 1.0);
        if p_servfail > 0.0 {
            let h = hash_words(&[base[0], base[1], base[2], base[3], base[4], 0x5efa]);
            if unit(h) < p_servfail {
                return Some(QueryFault::ServFail);
            }
        }
        None
    }

    /// The Byzantine mutation, if any, applied to one upstream answer.
    ///
    /// Keyed exactly like [`FaultProfile::upstream_fault`] — pure in
    /// `(profile, zone_key, query_key, attempt, now)` — so mutated
    /// campaigns replay bit-identically from a journal checkpoint. Which
    /// kind fires is a second independent draw over the enabled
    /// `mutate_*` flags, taken in declaration order.
    pub fn answer_mutation(
        &self,
        zone_key: u64,
        query_key: u64,
        attempt: u32,
        now: SimTime,
    ) -> Option<AnswerMutation> {
        if self.mutation_rate <= 0.0 {
            return None;
        }
        let mut kinds = [AnswerMutation::SpoofA; 4];
        let mut enabled = 0usize;
        for (on, kind) in [
            (self.mutate_spoof_a, AnswerMutation::SpoofA),
            (self.mutate_inject_ns, AnswerMutation::InjectNs),
            (self.mutate_truncate, AnswerMutation::Truncate),
            (self.mutate_inflate_ttl, AnswerMutation::InflateTtl),
        ] {
            if on {
                kinds[enabled] = kind;
                enabled += 1;
            }
        }
        if enabled == 0 {
            return None;
        }
        let base = [self.seed, zone_key, query_key, now.0, attempt as u64];
        let fire = hash_words(&[base[0], base[1], base[2], base[3], base[4], 0xbad0]);
        if unit(fire) >= self.mutation_rate {
            return None;
        }
        let pick = hash_words(&[base[0], base[1], base[2], base[3], base[4], 0xbad1]);
        Some(kinds[(pick % enabled as u64) as usize])
    }

    /// The attacker-prefix address a [`AnswerMutation::SpoofA`] record for
    /// this `(query, time)` points at: deterministic, always inside
    /// `attacker_prefix.0.attacker_prefix.1/16`.
    pub fn spoof_address(&self, query_key: u64, now: SimTime) -> Ipv4Addr {
        let h = hash_words(&[self.seed, query_key, now.0, 0xbad2]);
        Ipv4Addr::new(
            self.attacker_prefix[0],
            self.attacker_prefix[1],
            (h >> 8) as u8,
            h as u8,
        )
    }

    /// A deterministic latency draw (milliseconds) for one upstream query,
    /// Pareto-shaped so that the median is `latency_median_ms` and the
    /// 99th percentile is roughly `latency_median_ms * latency_tail`.
    pub fn query_latency_ms(
        &self,
        zone_key: u64,
        query_key: u64,
        attempt: u32,
        now: SimTime,
    ) -> f64 {
        if self.latency_median_ms <= 0.0 {
            return 0.0;
        }
        let h = hash_words(&[self.seed, zone_key, query_key, now.0, attempt as u64, 0x1a7e]);
        let u = unit(h);
        let tail = self.latency_tail.max(1.0);
        // latency = median * (2(1-u))^(-alpha): u=0.5 gives the median,
        // u=0.99 gives median * 50^alpha = median * tail.
        let alpha = tail.ln() / 50.0_f64.ln();
        self.latency_median_ms * (2.0 * (1.0 - u).max(1e-12)).powf(-alpha)
    }

    /// Whether one sampled NetFlow record is lost on export.
    pub fn netflow_export_lost(&self, link_key: u64, flow_key: u64, now: SimTime) -> bool {
        if self.netflow_export_loss <= 0.0 {
            return false;
        }
        let h = hash_words(&[self.seed, link_key, flow_key, now.0, 0xf10e]);
        unit(h) < self.netflow_export_loss
    }

    /// Whether `link_key`'s SNMP counter misses the poll cycle at `now`.
    ///
    /// Counters themselves stay monotonic; a missed poll only means the
    /// collector records no sample for that 5-minute bin, so the next
    /// successful poll's delta covers the gap.
    pub fn snmp_poll_missed(&self, link_key: u64, now: SimTime) -> bool {
        if self.snmp_gap <= 0.0 {
            return false;
        }
        let h = hash_words(&[self.seed, link_key, now.0, 0x50ff]);
        unit(h) < self.snmp_gap
    }
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::none()
    }
}

/// Probe-side retry schedule: capped exponential backoff between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per measurement, including the first (minimum 1).
    pub max_attempts: u32,
    /// Wait before the first retry; doubles each further retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff wait.
    pub backoff_cap: Duration,
}

impl RetryPolicy {
    /// An order-stable digest of the policy, for the resumable campaign's
    /// config fingerprint (see [`FaultProfile::digest`]).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.update(&self.max_attempts.to_le_bytes());
        h.update(&self.backoff_base.as_secs().to_le_bytes());
        h.update(&self.backoff_cap.as_secs().to_le_bytes());
        h.finish()
    }

    /// No retries: one attempt, zero backoff.
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: Duration::secs(0),
            backoff_cap: Duration::secs(0),
        }
    }

    /// The campaign default: up to 3 attempts, backing off 2 s then 4 s,
    /// capped at 30 s.
    pub const fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::secs(2),
            backoff_cap: Duration::secs(30),
        }
    }

    /// The wait before attempt number `attempt` (1-based retry index:
    /// attempt 0 is the initial try and never waits). Exponential in the
    /// retry index and capped at `backoff_cap`.
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::secs(0);
        }
        let shift = (attempt - 1).min(32);
        let raw = self.backoff_base.as_secs().saturating_mul(1u64 << shift);
        Duration::secs(raw.min(self.backoff_cap.as_secs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_digest_separates_models_and_is_stable() {
        let a = FaultProfile::none();
        assert_eq!(a.digest(), FaultProfile::none().digest(), "digest is a pure function");
        assert_ne!(a.digest(), FaultProfile::realistic(1).digest());
        assert_ne!(FaultProfile::realistic(1).digest(), FaultProfile::realistic(2).digest());
        // Every knob participates — a scripted window alone must change it.
        let scripted = a.with_blackout(SimTime(10), SimTime(20));
        assert_ne!(a.digest(), scripted.digest());
        assert_ne!(RetryPolicy::none().digest(), RetryPolicy::standard().digest());
    }

    #[test]
    fn streaming_fnv_matches_one_shot_fnv() {
        use core::fmt::Write as _;
        assert_eq!(Fnv64::new().finish(), fnv64(b""));
        // Chunked updates equal one concatenated hash.
        let mut h = Fnv64::new();
        h.update(b"appldnld.apple");
        h.update(b".com");
        h.update(&[198, 51, 100, 7]);
        let mut whole = b"appldnld.apple.com".to_vec();
        whole.extend_from_slice(&[198, 51, 100, 7]);
        assert_eq!(h.finish(), fnv64(&whole));
        // Display formatting hashes like to_string().as_bytes().
        let mut h = Fnv64::new();
        write!(h, "{}", 123_456u64).unwrap();
        assert_eq!(h.finish(), fnv64(123_456u64.to_string().as_bytes()));
    }

    #[test]
    fn resumed_fnv_continues_the_stream() {
        // Hash a prefix once, resume from its digest, and fold in a
        // suffix: identical to hashing the concatenation in one pass.
        let mut prefix = Fnv64::new();
        prefix.update(b"a.gslb.applimg.com");
        let mut resumed = Fnv64::with_state(prefix.finish());
        resumed.update(&[198, 51, 100, 7]);
        let mut whole = b"a.gslb.applimg.com".to_vec();
        whole.extend_from_slice(&[198, 51, 100, 7]);
        assert_eq!(resumed.finish(), fnv64(&whole));
        // Resuming without feeding anything is the identity.
        assert_eq!(Fnv64::with_state(0xdead_beef).finish(), 0xdead_beef);
    }

    #[test]
    fn none_profile_never_faults() {
        let p = FaultProfile::none();
        assert!(p.is_quiet());
        assert!(!p.has_infrastructure_faults());
        for i in 0..2_000u64 {
            let t = SimTime(i * 311);
            assert!(p.upstream_fault(i, i ^ 0xabc, (i % 5) as u32, t, 3.0).is_none());
            assert!(!p.netflow_export_lost(i, i ^ 1, t));
            assert!(!p.snmp_poll_missed(i, t));
            assert!(!p.zone_is_lame(i, t));
            assert!(!p.site_is_down(i, t));
            assert_eq!(p.site_capacity_factor(i, t), 1.0);
            assert!(!p.ns_is_dark(i, t));
            assert!(!p.target_killed(i, t));
            assert!(!p.health_blackout(t));
            assert_eq!(p.apple_load_factor(5.0), 1.0);
            assert!(p.answer_mutation(i, i ^ 0xdef, (i % 5) as u32, t).is_none());
        }
    }

    #[test]
    fn poisoning_preset_mutates_at_the_configured_rate() {
        let p = FaultProfile::poisoning(17);
        assert!(p.has_answer_mutations());
        assert!(!p.is_quiet());
        assert!(p.enforce_bailiwick, "hardened resolver is the default");
        assert!(p.upstream_fault(1, 2, 0, SimTime(1_505_000_000), 1.0).is_none(),
            "poisoning alone leaves the absent-answer plane clean");
        let trials = 20_000u64;
        let mut counts = std::collections::HashMap::new();
        for i in 0..trials {
            if let Some(m) = p.answer_mutation(3, i, 0, SimTime(1_505_000_000)) {
                *counts.entry(m).or_insert(0u64) += 1;
            }
        }
        let hit: u64 = counts.values().sum();
        let rate = hit as f64 / trials as f64;
        assert!((0.13..0.17).contains(&rate), "observed mutation rate {rate}");
        // All four kinds occur, roughly evenly.
        for kind in [
            AnswerMutation::SpoofA,
            AnswerMutation::InjectNs,
            AnswerMutation::Truncate,
            AnswerMutation::InflateTtl,
        ] {
            let n = counts.get(&kind).copied().unwrap_or(0);
            assert!(n as f64 > hit as f64 * 0.15, "kind {kind:?} underdrawn: {n}/{hit}");
        }
    }

    #[test]
    fn answer_mutations_are_reproducible_and_kind_gated() {
        let a = FaultProfile::poisoning(5);
        let b = FaultProfile::poisoning(5);
        for i in 0..2_000u64 {
            let t = SimTime(1_500_000_000 + i * 60);
            assert_eq!(a.answer_mutation(i, i * 7, 1, t), b.answer_mutation(i, i * 7, 1, t));
        }
        // Disabling three kinds leaves only the fourth.
        let only_spoof = FaultProfile {
            mutate_inject_ns: false,
            mutate_truncate: false,
            mutate_inflate_ttl: false,
            ..FaultProfile::poisoning(5)
        };
        let mut saw = 0;
        for i in 0..5_000u64 {
            if let Some(m) = only_spoof.answer_mutation(9, i, 0, SimTime(1_505_000_000)) {
                assert_eq!(m, AnswerMutation::SpoofA);
                saw += 1;
            }
        }
        assert!(saw > 0, "sole enabled kind must still fire");
        // Rate with no kinds enabled is inert even at rate 1.0.
        let hollow = FaultProfile { mutation_rate: 1.0, ..FaultProfile::none() };
        assert!(!hollow.has_answer_mutations());
        assert!(hollow.answer_mutation(1, 2, 0, SimTime(0)).is_none());
    }

    #[test]
    fn spoof_addresses_stay_inside_the_attacker_prefix() {
        let p = FaultProfile::poisoning(11);
        let mut distinct = std::collections::HashSet::new();
        for i in 0..1_000u64 {
            let addr = p.spoof_address(i, SimTime(1_505_000_000));
            assert_eq!(addr.octets()[0], 198);
            assert_eq!(addr.octets()[1], 18);
            distinct.insert(addr);
        }
        assert!(distinct.len() > 100, "spoofed hosts must spread over the /16");
        assert_eq!(
            p.spoof_address(7, SimTime(42)),
            p.spoof_address(7, SimTime(42)),
            "pure function of (profile, query, time)"
        );
    }

    #[test]
    fn mutation_knobs_participate_in_the_digest() {
        let base = FaultProfile::none();
        assert_ne!(base.digest(), FaultProfile::poisoning(0).digest());
        assert_ne!(
            FaultProfile::poisoning(1).digest(),
            FaultProfile::poisoning(1).with_bailiwick_enforcement(false).digest(),
            "enforcement flag is part of the fault-model cursor"
        );
        assert_ne!(
            FaultProfile::poisoning(1).digest(),
            FaultProfile { ttl_inflation_factor: 9_999, ..FaultProfile::poisoning(1) }.digest()
        );
    }

    #[test]
    fn site_outage_windows_cover_expected_fraction() {
        let p = FaultProfile {
            site_outage_every_hours: 48,
            site_outage_hours: 3,
            ..FaultProfile::none()
        }
        .with_seed(21);
        assert!(p.has_infrastructure_faults());
        assert!(!p.is_quiet());
        let hours = 24 * 365;
        let down = (0..hours).filter(|&h| p.site_is_down(9, SimTime(h * 3600))).count();
        let frac = down as f64 / hours as f64;
        // Expect roughly site_outage_hours / site_outage_every_hours ≈ 6 %.
        assert!((0.01..0.15).contains(&frac), "outage fraction {frac}");
        // Down sites retain no capacity.
        for h in 0..hours {
            let t = SimTime(h * 3600);
            if p.site_is_down(9, t) {
                assert_eq!(p.site_capacity_factor(9, t), 0.0);
            }
        }
    }

    #[test]
    fn brownouts_scale_capacity_without_killing_the_site() {
        let p = FaultProfile {
            brownout_every_hours: 12,
            brownout_hours: 4,
            brownout_depth: 0.6,
            ..FaultProfile::none()
        }
        .with_seed(22);
        let hours = 24 * 90;
        let mut browned = 0;
        for h in 0..hours {
            let t = SimTime(h * 3600);
            assert!(!p.site_is_down(33, t), "brownout alone never takes a site down");
            let f = p.site_capacity_factor(33, t);
            assert!(f == 1.0 || (f - 0.4).abs() < 1e-12, "factor {f}");
            if f < 1.0 {
                browned += 1;
            }
        }
        assert!(browned > 0, "brownout windows must occur");
    }

    #[test]
    fn ns_outage_windows_are_independent_of_site_outages() {
        let p = FaultProfile {
            site_outage_every_hours: 24,
            site_outage_hours: 2,
            ns_outage_every_hours: 24,
            ns_outage_hours: 2,
            ..FaultProfile::none()
        }
        .with_seed(7);
        let hours = 24 * 180;
        let mut differs = false;
        for h in 0..hours {
            let t = SimTime(h * 3600);
            if p.ns_is_dark(5, t) != p.site_is_down(5, t) {
                differs = true;
                break;
            }
        }
        assert!(differs, "NS and site windows must be decorrelated for the same key");
    }

    #[test]
    fn targeted_kill_hits_only_its_key_and_window() {
        let from = SimTime(1_000);
        let until = SimTime(2_000);
        let p = FaultProfile::none().with_target_kill(42, from, until);
        assert!(p.has_infrastructure_faults());
        assert!(p.target_killed(42, SimTime(1_000)));
        assert!(p.site_is_down(42, SimTime(1_500)));
        assert!(p.ns_is_dark(42, SimTime(1_500)));
        assert!(!p.target_killed(42, SimTime(2_000)), "window end is exclusive");
        assert!(!p.target_killed(42, SimTime(999)));
        assert!(!p.target_killed(41, SimTime(1_500)), "other keys unaffected");
        // Key 0 means "disabled", even with a window set.
        let off = FaultProfile::none().with_target_kill(0, from, until);
        assert!(!off.target_killed(0, SimTime(1_500)));
        assert!(!off.has_infrastructure_faults());
    }

    #[test]
    fn blackout_window_and_load_factor() {
        let p = FaultProfile::none().with_blackout(SimTime(100), SimTime(200));
        assert!(p.health_blackout(SimTime(150)));
        assert!(!p.health_blackout(SimTime(200)));
        assert!(!p.health_blackout(SimTime(99)));
        let d = FaultProfile { apple_degrade_per_load: 0.5, ..FaultProfile::none() };
        assert_eq!(d.apple_load_factor(0.5), 1.0, "no degradation below capacity");
        assert_eq!(d.apple_load_factor(1.0), 1.0);
        assert!((d.apple_load_factor(3.0) - 0.5).abs() < 1e-12, "1/(1+0.5*2)");
    }

    #[test]
    fn infrastructure_preset_leaves_measurement_plane_clean() {
        let p = FaultProfile::infrastructure(3);
        assert!(p.has_infrastructure_faults());
        assert_eq!(p.query_loss, 0.0);
        assert_eq!(p.netflow_export_loss, 0.0);
        assert_eq!(p.snmp_gap, 0.0);
        assert!(p.upstream_fault(1, 2, 0, SimTime(1_505_000_000), 0.9).is_none());
    }

    #[test]
    fn decisions_are_reproducible() {
        let a = FaultProfile::realistic(77);
        let b = FaultProfile::realistic(77);
        for i in 0..500u64 {
            let t = SimTime(1_500_000_000 + i * 60);
            assert_eq!(
                a.upstream_fault(i, i * 3, 1, t, 0.5),
                b.upstream_fault(i, i * 3, 1, t, 0.5)
            );
            assert_eq!(a.snmp_poll_missed(i, t), b.snmp_poll_missed(i, t));
        }
    }

    #[test]
    fn seeds_decorrelate_fault_patterns() {
        let a = FaultProfile::realistic(1).with_seed(1);
        let b = FaultProfile::realistic(1).with_seed(2);
        let mut differs = false;
        for i in 0..4_000u64 {
            let t = SimTime(1_500_000_000 + i * 60);
            if a.netflow_export_lost(7, i, t) != b.netflow_export_lost(7, i, t) {
                differs = true;
                break;
            }
        }
        assert!(differs, "different seeds must give different fault patterns");
    }

    #[test]
    fn query_loss_rate_is_respected() {
        let p = FaultProfile { query_loss: 0.2, ..FaultProfile::none() }.with_seed(5);
        let trials = 20_000u64;
        let timeouts = (0..trials)
            .filter(|&i| {
                matches!(
                    p.upstream_fault(3, i, 0, SimTime(1_505_000_000), 0.0),
                    Some(QueryFault::Timeout)
                )
            })
            .count();
        let rate = timeouts as f64 / trials as f64;
        assert!((0.18..0.22).contains(&rate), "observed loss rate {rate}");
    }

    #[test]
    fn servfail_scales_with_zone_load() {
        let p = FaultProfile {
            servfail_floor: 0.01,
            servfail_per_load: 0.2,
            ..FaultProfile::none()
        }
        .with_seed(9);
        let count = |load: f64| {
            (0..10_000u64)
                .filter(|&i| p.upstream_fault(11, i, 0, SimTime(1_505_000_000), load).is_some())
                .count()
        };
        let idle = count(0.0);
        let busy = count(2.0);
        assert!(busy > idle * 5, "overload must raise SERVFAILs ({idle} -> {busy})");
    }

    #[test]
    fn lame_windows_cover_expected_fraction() {
        let p = FaultProfile {
            lame_every_hours: 48,
            lame_hours: 2,
            ..FaultProfile::none()
        }
        .with_seed(3);
        let hours = 24 * 365;
        let lame = (0..hours).filter(|&h| p.zone_is_lame(42, SimTime(h * 3600))).count();
        let frac = lame as f64 / hours as f64;
        // Expect roughly lame_hours / lame_every_hours = ~4.2 % of hours.
        assert!((0.01..0.10).contains(&frac), "lame fraction {frac}");
        // And windows last at least lame_hours in a row somewhere.
        let mut run = 0;
        let mut best = 0;
        for h in 0..hours {
            if p.zone_is_lame(42, SimTime(h * 3600)) {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        assert!(best >= 2, "windows should span {}+ hours, saw {best}", 2);
    }

    #[test]
    fn latency_median_and_tail_are_shaped() {
        let p = FaultProfile {
            latency_median_ms: 30.0,
            latency_tail: 40.0,
            ..FaultProfile::none()
        }
        .with_seed(13);
        let mut draws: Vec<f64> = (0..8_000u64)
            .map(|i| p.query_latency_ms(1, i, 0, SimTime(1_505_000_000)))
            .collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = draws[draws.len() / 2];
        let p99 = draws[draws.len() * 99 / 100];
        assert!((20.0..45.0).contains(&p50), "p50 {p50}");
        assert!(p99 > 300.0, "p99 {p99} should be deep in the tail");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy::standard();
        assert_eq!(r.backoff_before(0), Duration::secs(0));
        assert_eq!(r.backoff_before(1), Duration::secs(2));
        assert_eq!(r.backoff_before(2), Duration::secs(4));
        assert_eq!(r.backoff_before(3), Duration::secs(8));
        assert_eq!(r.backoff_before(10), Duration::secs(30));
        assert_eq!(r.backoff_before(63), Duration::secs(30));
        assert_eq!(RetryPolicy::none().backoff_before(1), Duration::secs(0));
    }
}
