//! Quantifying and repairing gaps in telemetry series.
//!
//! Fault-injected campaigns produce series with holes: SNMP bins with no
//! poll, NetFlow cells with lost exports, probe rounds with no successful
//! resolution. Downstream figure builders must neither panic on a hole nor
//! silently read it as zero. The helpers here make gaps explicit — a
//! [`Coverage`] summary says how much of a series is real, and
//! [`interpolate_gaps`] fills holes by linear interpolation while flagging
//! every filled bin.

use mcdn_geo::time::{Duration, SimTime};

/// How much of an expected series was actually observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Coverage {
    /// Bins (or cells) backed by a real observation.
    pub observed: usize,
    /// Bins that were expected but missing and had to be repaired or
    /// flagged.
    pub missing: usize,
}

impl Coverage {
    /// Fraction of expected bins that were observed, in `[0, 1]`; a series
    /// with no expected bins counts as fully covered.
    pub fn fraction(&self) -> f64 {
        let total = self.observed + self.missing;
        if total == 0 {
            1.0
        } else {
            self.observed as f64 / total as f64
        }
    }

    /// True when nothing was missing.
    pub fn complete(&self) -> bool {
        self.missing == 0
    }
}

/// One bin of a gap-repaired series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilledBin {
    /// Bin start time.
    pub t: SimTime,
    /// Observed value, or the interpolated estimate when `interpolated`.
    pub value: f64,
    /// Whether this bin was missing and filled by interpolation.
    pub interpolated: bool,
}

/// Re-grids sparse observations onto the regular `[from, to)` grid with
/// spacing `step`, linearly interpolating missing bins between neighbours
/// and extending flat past the first/last observation. Every repaired bin
/// is flagged, and the returned [`Coverage`] counts observed vs. filled
/// bins. An entirely empty input yields an all-zero, fully-flagged series.
pub fn interpolate_gaps(
    observed: &[(SimTime, f64)],
    from: SimTime,
    to: SimTime,
    step: Duration,
) -> (Vec<FilledBin>, Coverage) {
    assert!(step.as_secs() > 0, "grid step must be positive");
    let mut points: Vec<(SimTime, f64)> = observed.to_vec();
    points.sort_by_key(|(t, _)| *t);
    let mut out = Vec::new();
    let mut cov = Coverage::default();
    let mut t = from;
    while t < to {
        let exact = points.iter().find(|(pt, _)| *pt == t).map(|(_, v)| *v);
        match exact {
            Some(v) => {
                cov.observed += 1;
                out.push(FilledBin { t, value: v, interpolated: false });
            }
            None => {
                cov.missing += 1;
                let before = points.iter().rev().find(|(pt, _)| *pt < t);
                let after = points.iter().find(|(pt, _)| *pt > t);
                let value = match (before, after) {
                    (Some(&(t0, v0)), Some(&(t1, v1))) => {
                        let span = (t1.0 - t0.0) as f64;
                        let frac = (t.0 - t0.0) as f64 / span;
                        v0 + (v1 - v0) * frac
                    }
                    (Some(&(_, v0)), None) => v0,
                    (None, Some(&(_, v1))) => v1,
                    (None, None) => 0.0,
                };
                out.push(FilledBin { t, value, interpolated: true });
            }
        }
        t += step;
    }
    (out, cov)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_series_passes_through_unchanged() {
        let obs: Vec<(SimTime, f64)> =
            (0..6).map(|i| (SimTime(i * 300), i as f64 * 10.0)).collect();
        let (bins, cov) = interpolate_gaps(&obs, SimTime(0), SimTime(1800), Duration::secs(300));
        assert!(cov.complete());
        assert_eq!(cov.fraction(), 1.0);
        assert!(bins.iter().all(|b| !b.interpolated));
        assert_eq!(bins.len(), 6);
        assert_eq!(bins[3].value, 30.0);
    }

    #[test]
    fn interior_gap_is_linearly_interpolated_and_flagged() {
        let obs = [(SimTime(0), 0.0), (SimTime(600), 60.0)];
        let (bins, cov) = interpolate_gaps(&obs, SimTime(0), SimTime(900), Duration::secs(300));
        assert_eq!(cov.observed, 2);
        assert_eq!(cov.missing, 1);
        let mid = &bins[1];
        assert!(mid.interpolated);
        assert!((mid.value - 30.0).abs() < 1e-9, "midpoint {}", mid.value);
    }

    #[test]
    fn edges_extend_flat_and_empty_input_is_zero() {
        let obs = [(SimTime(600), 42.0)];
        let (bins, _) = interpolate_gaps(&obs, SimTime(0), SimTime(1200), Duration::secs(300));
        assert_eq!(bins[0].value, 42.0);
        assert!(bins[0].interpolated);
        assert_eq!(bins[3].value, 42.0);

        let (empty, cov) = interpolate_gaps(&[], SimTime(0), SimTime(600), Duration::secs(300));
        assert_eq!(cov.observed, 0);
        assert!(empty.iter().all(|b| b.interpolated && b.value == 0.0));
    }
}
