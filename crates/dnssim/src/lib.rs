//! Simulated DNS: authoritative zones, dynamic mapping policies, and a
//! recursive resolver with a TTL-honouring cache.
//!
//! The Apple Meta-CDN's request mapping (§3.2 of the paper) is "location-
//! based dynamic DNS resolution": a chain of CNAMEs across several operators'
//! zones (`apple.com` → `akadns.net` → `applimg.com` → CDN-specific names),
//! where some hops are static records and others are computed per request by
//! a mapping function (geo split, CDN selector, GSLB). This crate models
//! exactly that:
//!
//! * [`Zone`] holds static records *and* [`MappingPolicy`] hooks at
//!   individual names — a policy sees the [`QueryContext`] (client location,
//!   simulated time) and returns the records to serve, which is how GSLB and
//!   the Meta-CDN selector are implemented by `metacdn`.
//! * [`Namespace`] is the set of all authoritative zones; it answers one
//!   question at a time like the authoritative side of the real DNS.
//! * [`RecursiveResolver`] chases CNAME chains across zones with a
//!   per-resolver cache honouring TTLs — probes each own a resolver, so TTL
//!   effects (the 15 s selector TTL vs the 21600 s entry TTL) shape what a
//!   probe re-resolves every measurement round, exactly as on RIPE Atlas.
//! * Every resolution yields a [`ResolutionTrace`] recording each CNAME edge
//!   with its TTL — the raw material for regenerating Figure 2.
//!
//! A deliberate simplification: the real mapping infers client location from
//! the recursive resolver's IP (plus EDNS Client Subnet); our probes query
//! with an explicit [`QueryContext`] carrying their location. Both designs
//! give the mapping function the same input signal, so mapping behaviour is
//! unaffected; what is *not* modelled is mis-mapping via distant third-party
//! resolvers, which the paper also avoids (Atlas probes use local resolvers).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod context;
pub mod faults;
pub mod interned;
pub mod iterative;
pub mod memo;
pub mod mutation;
pub mod resolver;
pub mod wire;
pub mod zone;

pub use cache::{Cache, CacheRank, MAX_CACHE_TTL};
pub use context::QueryContext;
pub use faults::{FaultModel, NoFaults, UpstreamFault};
pub use interned::{
    CompiledNamespace, DepRecord, ICacheExportEntry, IRData, IRecord, IResolutionError, IRoundMemo,
    ITrace, ITraceStep, InternedFaultModel, InternedResolver, NoInternedFaults, ResolveScratch,
};
pub use iterative::{IterativeResolver, IterativeOutcome};
pub use memo::{MemoKey, MemoScope, RoundMemo};
pub use mutation::{
    AnswerTamper, BailiwickPolicy, ITamper, InternedMutationModel, MutationModel,
    NoInternedMutations, NoMutations, apply_itamper, apply_tamper, attacker_ns, attacker_owner,
};
pub use resolver::{RecursiveResolver, ResolutionError, ResolutionTrace, TraceStep};
pub use wire::serve;
pub use zone::{MappingPolicy, Namespace, PolicyDeps, PolicyScope, Zone, ZoneAnswer};
