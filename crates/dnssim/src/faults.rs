//! Upstream fault hooks for the recursive resolver.
//!
//! Real recursive resolution fails in ways the clean simulator never shows:
//! an authoritative server times out, SERVFAILs under load, or serves a
//! lame delegation. [`FaultModel`] is the resolver's injection point for
//! those conditions — [`crate::RecursiveResolver::resolve_with`] consults
//! it before every *upstream* query (cache hits are never faulted, which is
//! exactly how caches mask authoritative outages in the real DNS).
//!
//! This crate only defines the hook; concrete deterministic fault sources
//! (hash-based loss rates, load-coupled SERVFAIL, lame windows) live in
//! `mcdn-faults` and are adapted to this trait by the campaign layer.

use crate::context::QueryContext;
use mcdn_dnswire::Name;

/// A transient failure of one upstream query to an authoritative zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpstreamFault {
    /// The zone answered SERVFAIL.
    ServFail,
    /// The query or answer was lost; the resolver gives up on this attempt
    /// after its timeout.
    Timeout,
}

/// Decides whether one upstream query suffers a transient fault.
///
/// Implementations must be pure functions of their inputs (plus any frozen
/// configuration) so that campaigns stay reproducible.
pub trait FaultModel {
    /// The fault, if any, for querying `qname` at the zone rooted at
    /// `zone` during retry number `attempt` (0 = first try) in context
    /// `ctx`.
    fn upstream_fault(
        &self,
        zone: &Name,
        qname: &Name,
        ctx: &QueryContext,
        attempt: u32,
    ) -> Option<UpstreamFault>;
}

/// The trivial fault model: never faults. [`crate::RecursiveResolver::resolve`]
/// uses this, so fault-unaware callers are bit-identical to the pre-fault
/// resolver.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn upstream_fault(
        &self,
        _zone: &Name,
        _qname: &Name,
        _ctx: &QueryContext,
        _attempt: u32,
    ) -> Option<UpstreamFault> {
        None
    }
}
