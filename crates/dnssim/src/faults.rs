//! Upstream fault hooks for the recursive resolver.
//!
//! Real recursive resolution fails in ways the clean simulator never shows:
//! an authoritative server times out, SERVFAILs under load, or serves a
//! lame delegation. [`FaultModel`] is the resolver's injection point for
//! those conditions — [`crate::RecursiveResolver::resolve_with`] consults
//! it before every *upstream* query (cache hits are never faulted, which is
//! exactly how caches mask authoritative outages in the real DNS).
//!
//! This crate only defines the hook; concrete deterministic fault sources
//! (hash-based loss rates, load-coupled SERVFAIL, lame windows) live in
//! `mcdn-faults` and are adapted to this trait by the campaign layer.

use crate::context::QueryContext;
use mcdn_dnswire::Name;

/// A transient failure of one upstream query to an authoritative zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpstreamFault {
    /// The zone answered SERVFAIL.
    ServFail,
    /// The query or answer was lost; the resolver gives up on this attempt
    /// after its timeout.
    Timeout,
}

/// Decides whether one upstream query suffers a transient fault.
///
/// Implementations must be pure functions of their inputs (plus any frozen
/// configuration) so that campaigns stay reproducible.
pub trait FaultModel {
    /// The fault, if any, for querying `qname` at the zone rooted at
    /// `zone` during retry number `attempt` (0 = first try) in context
    /// `ctx`.
    fn upstream_fault(
        &self,
        zone: &Name,
        qname: &Name,
        ctx: &QueryContext,
        attempt: u32,
    ) -> Option<UpstreamFault>;
}

/// The trivial fault model: never faults. [`crate::RecursiveResolver::resolve`]
/// uses this, so fault-unaware callers are bit-identical to the pre-fault
/// resolver.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    fn upstream_fault(
        &self,
        _zone: &Name,
        _qname: &Name,
        _ctx: &QueryContext,
        _attempt: u32,
    ) -> Option<UpstreamFault> {
        None
    }
}

/// Any pure closure with the right shape is a fault model. This lets tests
/// and the chaos harness inject ad-hoc conditions ("that one zone is dark")
/// without defining a named type:
///
/// ```ignore
/// let dark = |zone: &Name, _: &Name, _: &QueryContext, _: u32| {
///     (zone == &gslb_apex).then_some(UpstreamFault::Timeout)
/// };
/// resolver.resolve_with(&q, &ctx, &dark);
/// ```
impl<F> FaultModel for F
where
    F: Fn(&Name, &Name, &QueryContext, u32) -> Option<UpstreamFault>,
{
    fn upstream_fault(
        &self,
        zone: &Name,
        qname: &Name,
        ctx: &QueryContext,
        attempt: u32,
    ) -> Option<UpstreamFault> {
        self(zone, qname, ctx, attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_geo::{Continent, Coord, Locode, SimTime};
    use std::net::Ipv4Addr;

    #[test]
    fn closures_are_fault_models() {
        let zone = Name::parse("applimg.com.").unwrap();
        let other = Name::parse("example.com.").unwrap();
        let q = Name::parse("a.gslb.applimg.com.").unwrap();
        let ctx = QueryContext {
            client_ip: Ipv4Addr::new(198, 51, 100, 1),
            locode: Locode::parse("deber").unwrap(),
            coord: Coord::new(52.5, 13.4),
            continent: Continent::Europe,
            now: SimTime::from_ymd(2017, 9, 19),
        };
        let dark_zone = zone.clone();
        let model = move |z: &Name, _: &Name, _: &QueryContext, _: u32| {
            (*z == dark_zone).then_some(UpstreamFault::Timeout)
        };
        assert_eq!(model.upstream_fault(&zone, &q, &ctx, 0), Some(UpstreamFault::Timeout));
        assert_eq!(model.upstream_fault(&other, &q, &ctx, 0), None);
        assert_eq!(NoFaults.upstream_fault(&zone, &q, &ctx, 0), None);
    }
}
