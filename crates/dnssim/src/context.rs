//! Per-query context passed to mapping policies.

use mcdn_geo::{Continent, Coord, Locode, Region, SimTime};
use std::net::Ipv4Addr;

/// Everything a mapping policy may condition on for one DNS query.
///
/// Mirrors the signals a production GSLB derives from the querying resolver:
/// a topological identity (`client_ip`), a geographic position, and the time
/// of day. Simulated clients state these directly (see the crate docs for
/// why this is behaviour-preserving).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryContext {
    /// Source address the query (appears to) come from.
    pub client_ip: Ipv4Addr,
    /// City of the client.
    pub locode: Locode,
    /// Coordinates of the client.
    pub coord: Coord,
    /// Continent of the client (Figure 4 grouping).
    pub continent: Continent,
    /// Simulated query time.
    pub now: SimTime,
}

impl QueryContext {
    /// The Meta-CDN routing region for this client.
    pub fn region(&self) -> Region {
        self.continent.region()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_derived_from_continent() {
        let ctx = QueryContext {
            client_ip: Ipv4Addr::new(198, 51, 100, 1),
            locode: Locode::parse("deber").unwrap(),
            coord: Coord::new(52.5, 13.4),
            continent: Continent::Europe,
            now: SimTime::from_ymd(2017, 9, 19),
        };
        assert_eq!(ctx.region(), Region::Eu);
    }
}
