//! Wire-level serving: the authoritative side answers real DNS packets.
//!
//! The structured [`Namespace::query`](crate::Namespace::query) API is what
//! the simulation drivers use for speed; this module is the byte-accurate
//! boundary a real deployment would expose. A query arrives as RFC 1035
//! bytes, is decoded, answered from the same zones/policies, and re-encoded
//! — so measurement tooling built against the wire format (or captured
//! packets) can be tested against the simulated Meta-CDN directly.

use crate::context::QueryContext;
use crate::zone::{Namespace, ZoneAnswer};
use mcdn_dnswire::{Flags, Header, Message, Opcode, Rcode, WireError};

/// Serves one DNS query packet against the namespace.
///
/// Behaviour mirrors an authoritative-with-recursion-available resolver
/// front end:
///
/// * malformed packets → `FORMERR` (when a header id is recoverable) or
///   [`WireError`] when not even that much parses;
/// * non-QUERY opcodes → `NOTIMP`;
/// * zero or multiple questions → `FORMERR`;
/// * unknown names → `NXDOMAIN`; known names without the asked type →
///   empty `NOERROR` (NODATA);
/// * CNAMEs are followed *within* the namespace, like the paper's probes
///   saw (answers carried the whole visible chain).
pub fn serve(ns: &Namespace, query_bytes: &[u8], ctx: &QueryContext) -> Result<Vec<u8>, WireError> {
    let query = match Message::decode(query_bytes) {
        Ok(q) => q,
        Err(_) if query_bytes.len() >= 2 => {
            // Enough for a transaction id: answer FORMERR.
            let id = u16::from_be_bytes([query_bytes[0], query_bytes[1]]);
            let resp = Message {
                header: Header {
                    id,
                    flags: Flags { qr: true, ..Flags::default() },
                    opcode: Opcode::Query,
                    rcode: Rcode::FormErr,
                },
                ..Message::default()
            };
            return resp.encode();
        }
        Err(e) => return Err(e),
    };

    if query.header.opcode != Opcode::Query {
        let mut resp = Message::response_to(&query, Rcode::NotImp);
        resp.header.opcode = query.header.opcode;
        return resp.encode();
    }
    if query.questions.len() != 1 {
        return Message::response_to(&query, Rcode::FormErr).encode();
    }
    let question = &query.questions[0];

    // Follow the chain, accumulating answer records like a recursive
    // front end with full view of the namespace.
    let mut resp = Message::response_to(&query, Rcode::NoError);
    let mut qname = question.name.clone();
    for _ in 0..crate::resolver::MAX_CHAIN {
        match ns.query(&qname, question.qtype, ctx) {
            (ZoneAnswer::Records(rrs), _) => {
                let next = rrs.iter().find_map(|rr| match &rr.rdata {
                    mcdn_dnswire::RData::Cname(t) if question.qtype != mcdn_dnswire::RecordType::Cname => {
                        Some(t.clone())
                    }
                    _ => None,
                });
                let terminal = rrs.iter().any(|rr| rr.rtype() == question.qtype);
                resp.answers.extend(rrs);
                match next {
                    Some(t) if !terminal => qname = t,
                    _ => break,
                }
            }
            (ZoneAnswer::NoData, _) => break,
            (ZoneAnswer::NxDomain, _) => {
                // NXDOMAIN only if nothing was resolved yet; a broken tail
                // after a CNAME is still NXDOMAIN per RFC 2308.
                resp.header.rcode = Rcode::NxDomain;
                break;
            }
        }
    }
    resp.header.flags.aa = true;
    resp.encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Zone;
    use mcdn_dnswire::{Name, RData, RecordType};
    use mcdn_geo::{Continent, Coord, Locode, SimTime};
    use std::net::Ipv4Addr;

    fn ctx() -> QueryContext {
        QueryContext {
            client_ip: Ipv4Addr::new(84, 17, 0, 1),
            locode: Locode::parse("defra").unwrap(),
            coord: Coord::new(50.1, 8.7),
            continent: Continent::Europe,
            now: SimTime::from_ymd(2017, 9, 15),
        }
    }

    fn ns() -> Namespace {
        let mut ns = Namespace::new();
        let mut z = Zone::new(Name::parse("apple.com").unwrap());
        z.add_cname("appldnld.apple.com", "lb.apple.com", 21600);
        z.add_a("lb.apple.com", Ipv4Addr::new(17, 253, 1, 1), 20);
        ns.add_zone(z);
        ns
    }

    #[test]
    fn full_chain_over_the_wire() {
        let q = Message::query(7, Name::parse("appldnld.apple.com").unwrap(), RecordType::A);
        let resp_bytes = serve(&ns(), &q.encode().unwrap(), &ctx()).unwrap();
        let resp = Message::decode(&resp_bytes).unwrap();
        assert_eq!(resp.header.id, 7);
        assert!(resp.header.flags.qr && resp.header.flags.aa);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert_eq!(resp.answers.len(), 2, "CNAME + A");
        assert!(matches!(resp.answers[0].rdata, RData::Cname(_)));
        assert!(matches!(resp.answers[1].rdata, RData::A(a) if a == Ipv4Addr::new(17, 253, 1, 1)));
    }

    #[test]
    fn nxdomain_over_the_wire() {
        let q = Message::query(9, Name::parse("nope.apple.com").unwrap(), RecordType::A);
        let resp = Message::decode(&serve(&ns(), &q.encode().unwrap(), &ctx()).unwrap()).unwrap();
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn nodata_is_noerror_with_empty_answer() {
        let q = Message::query(9, Name::parse("lb.apple.com").unwrap(), RecordType::Txt);
        let resp = Message::decode(&serve(&ns(), &q.encode().unwrap(), &ctx()).unwrap()).unwrap();
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn garbage_gets_formerr_when_id_recoverable() {
        let garbage = [0xABu8, 0xCD, 0xFF, 0xFF, 0, 9];
        let resp = Message::decode(&serve(&ns(), &garbage, &ctx()).unwrap()).unwrap();
        assert_eq!(resp.header.id, 0xABCD);
        assert_eq!(resp.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn truly_unparseable_is_an_error() {
        assert!(serve(&ns(), &[0x01], &ctx()).is_err());
    }

    #[test]
    fn non_query_opcode_notimp() {
        let mut q = Message::query(3, Name::parse("lb.apple.com").unwrap(), RecordType::A);
        q.header.opcode = Opcode::Other(4); // NOTIFY
        let resp = Message::decode(&serve(&ns(), &q.encode().unwrap(), &ctx()).unwrap()).unwrap();
        assert_eq!(resp.header.rcode, Rcode::NotImp);
    }

    #[test]
    fn multiple_questions_rejected() {
        let mut q = Message::query(3, Name::parse("lb.apple.com").unwrap(), RecordType::A);
        q.questions.push(q.questions[0].clone());
        let resp = Message::decode(&serve(&ns(), &q.encode().unwrap(), &ctx()).unwrap()).unwrap();
        assert_eq!(resp.header.rcode, Rcode::FormErr);
    }
}
