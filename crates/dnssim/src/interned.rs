//! The interned, zero-allocation resolution hot path.
//!
//! The string-keyed resolver ([`crate::resolver::RecursiveResolver`])
//! clones [`Name`]s into cache keys, memo keys, and trace steps on every
//! hop of every resolution — fine for correctness work, but it dominates
//! the campaign engine's profile. This module compiles a [`Namespace`]
//! into an id-keyed form once per campaign and runs the whole hot loop on
//! `u32` [`NameId`]s:
//!
//! * [`CompiledNamespace`] interns every name the namespace can mention
//!   into a shared [`NameTable`] and precomputes, per name, its
//!   authoritative zone, declared [`PolicyScope`], existence bit, and
//!   display-form FNV-1a digest (the fault-key prefix). Static record
//!   sets become flat arena slices; dynamic [`MappingPolicy`] hooks are
//!   kept as borrowed trait objects.
//! * [`InternedResolver`] replays the exact decision sequence of
//!   `resolve_inner` — cache, fault hook, memo, authoritative query —
//!   against id-keyed structures, writing answers and trace steps into a
//!   caller-owned [`ResolveScratch`] instead of allocating. Once its
//!   per-probe [`ICache`] and the scratch buffers are warm, a resolution
//!   performs **zero heap allocations** (the bench gate in
//!   `bench_campaigns` asserts this).
//! * [`IRoundMemo`] is the id-keyed [`RoundMemo`](crate::RoundMemo):
//!   per-shard, cleared per round, canonicalized back to [`Name`]-keyed
//!   counts at round end so cross-shard merging (and therefore output)
//!   is unchanged.
//!
//! Names that are *not* in the compiled table (a caller querying a name
//! the namespace never mentions) spill into a per-scratch overlay
//! interner; the workspace namespaces intern everything at compile time,
//! so the overlay stays empty on the hot path.
//!
//! Equivalence with the string path is enforced by tests in this module
//! (trace-for-trace, cache-state-for-cache-state, memo-count-for-count)
//! and by the campaign-level reference test in `mcdn-scenario`.

use crate::cache::{MAX_CACHE_TTL, NEGATIVE_TTL};
use crate::context::QueryContext;
use crate::faults::UpstreamFault;
use crate::memo::{MemoKey, MemoScope};
use crate::mutation::{apply_itamper, BailiwickPolicy, ITamper, InternedMutationModel, NoInternedMutations};
use crate::resolver::{ResolutionTrace, TraceStep, MAX_CHAIN};
use crate::zone::{MappingPolicy, Namespace, PolicyDeps, PolicyScope, ZoneAnswer};
use mcdn_dnswire::{Name, RData, RecordType, ResourceRecord};
use mcdn_geo::{Duration, SimTime};
use mcdn_intern::{display_fnv, FnvBuildHasher, NameId, NameTable};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Interned record data: the two variants the resolver inspects, plus an
/// opaque catch-all carrying the wire type (enough for terminal-answer
/// checks; the payload of non-A/CNAME records is never read on the hot
/// path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IRData {
    /// An IPv4 address record.
    A(Ipv4Addr),
    /// A CNAME redirect to another interned name.
    Cname(NameId),
    /// An NS delegation to another interned name (carried structurally so
    /// bailiwick audits can see injected delegations; never chased).
    Ns(NameId),
    /// Any other record type, by wire value.
    Opaque(u16),
}

/// An interned resource record. `Copy`, so answer buffers and arenas
/// move records without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IRecord {
    /// Owner name.
    pub name: NameId,
    /// Time to live, seconds.
    pub ttl: u32,
    /// The record data.
    pub rdata: IRData,
}

impl IRecord {
    /// The record type's wire value (A = 1, CNAME = 5, else the stored
    /// opaque value).
    pub fn rtype_u16(&self) -> u16 {
        match self.rdata {
            IRData::A(_) => RecordType::A.to_u16(),
            IRData::Cname(_) => RecordType::Cname.to_u16(),
            IRData::Ns(_) => RecordType::Ns.to_u16(),
            IRData::Opaque(t) => t,
        }
    }
}

/// Per-name facts precomputed at compile time (and lazily for overlay
/// names): which zone answers for it, how its answers scope, and whether
/// it exists there (NXDOMAIN vs NODATA).
#[derive(Debug, Clone, Copy)]
struct CompiledMeta {
    /// Index into [`CompiledNamespace::zones`] of the authoritative zone.
    authority: Option<u16>,
    /// Declared answer scope at this name ([`Zone::scope_of`](crate::Zone::scope_of)).
    scope: PolicyScope,
    /// Declared mutable-input deps at this name ([`Zone::deps_of`](crate::Zone::deps_of)).
    deps: PolicyDeps,
    /// Whether the authoritative zone has any record or policy here.
    exists: bool,
}

/// One zone in compiled form: statics as arena slices, policies as
/// borrowed hooks.
struct CompiledZone<'a> {
    /// Interned zone origin.
    origin: NameId,
    /// Dynamic mapping policies by interned owner id.
    policies: HashMap<u32, &'a dyn MappingPolicy, FnvBuildHasher>,
    /// Static record sets: `(owner id, wire qtype) → arena range`.
    statics: HashMap<(u32, u16), (u32, u32), FnvBuildHasher>,
    /// Backing storage for all static record sets.
    arena: Vec<IRecord>,
}

/// Internal query outcome; records (for the `Records` case) are written
/// into the caller's buffer.
enum IAnswer {
    Records,
    NoData,
    NxDomain,
}

/// The result of replicating [`Namespace::authority_for`]: index of the
/// most specific zone, breaking label-count ties like
/// `Iterator::max_by_key` (last maximum wins).
fn authority_index(ns: &Namespace, name: &Name) -> Option<u16> {
    let mut best: Option<(usize, usize)> = None;
    for (i, z) in ns.zones().iter().enumerate() {
        if name.is_within(z.origin()) {
            let labels = z.origin().label_count();
            let better = match best {
                Some((best_labels, _)) => labels >= best_labels,
                None => true,
            };
            if better {
                best = Some((labels, i));
            }
        }
    }
    best.map(|(_, i)| i as u16)
}

fn meta_for(ns: &Namespace, name: &Name) -> CompiledMeta {
    let authority = authority_index(ns, name);
    let (scope, deps, exists) = match authority {
        Some(i) => {
            let z = &ns.zones()[i as usize];
            (z.scope_of(name), z.deps_of(name), z.contains_name(name))
        }
        None => (PolicyScope::Global, PolicyDeps::none(), false),
    };
    CompiledMeta { authority, scope, deps, exists }
}

/// Overflow interner for names outside the compiled table, owned by a
/// [`ResolveScratch`]. Ids continue past the table (`table.len() + i`).
/// The workspace namespaces intern everything at compile time, so this
/// stays empty in the campaign engine; it exists so arbitrary queries
/// (tests, ad-hoc probes) remain correct rather than panicking.
#[derive(Debug, Default)]
pub struct Overlay {
    ids: HashMap<Name, u32, FnvBuildHasher>,
    names: Vec<Name>,
    fnvs: Vec<u64>,
    meta: Vec<CompiledMeta>,
}

impl Overlay {
    /// Names interned past the shared table, in id order.
    pub fn names(&self) -> &[Name] {
        &self.names
    }
}

/// A namespace compiled for the interned hot path. Borrows the
/// [`Namespace`] (policies stay where they live); build one per campaign
/// and share it read-only across shards.
pub struct CompiledNamespace<'a> {
    ns: &'a Namespace,
    table: NameTable,
    meta: Vec<CompiledMeta>,
    zones: Vec<CompiledZone<'a>>,
    compile_id: u64,
}

/// Process-wide compile counter behind [`CompiledNamespace::compile_id`].
static COMPILE_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl std::fmt::Debug for CompiledNamespace<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledNamespace")
            .field("names", &self.table.len())
            .field("zones", &self.zones.len())
            .finish()
    }
}

fn compiled_rr(table: &NameTable, rr: &ResourceRecord) -> IRecord {
    let name = table.get(&rr.name).expect("owner interned during compile pass 1");
    let rdata = match &rr.rdata {
        RData::A(a) => IRData::A(*a),
        RData::Cname(t) => IRData::Cname(table.get(t).expect("target interned during compile pass 1")),
        RData::Ns(t) => IRData::Ns(table.get(t).expect("target interned during compile pass 1")),
        other => IRData::Opaque(other.rtype().to_u16()),
    };
    IRecord { name, ttl: rr.ttl, rdata }
}

impl<'a> CompiledNamespace<'a> {
    /// Compiles `ns`: interns every origin, record owner, CNAME target,
    /// and policy owner, then freezes static record sets into per-zone
    /// arenas and precomputes per-name authority/scope/existence/FNV.
    pub fn compile(ns: &'a Namespace) -> CompiledNamespace<'a> {
        Self::compile_with_extra(ns, &[])
    }

    /// [`CompiledNamespace::compile`] with extra names interned into the
    /// shared table after the namespace's own (deterministic ids, so
    /// cache export/restore stays valid). Adversarial campaigns intern
    /// the attacker owner names here so injected records never touch the
    /// per-scratch overlay on the hot path.
    pub fn compile_with_extra(ns: &'a Namespace, extra: &[Name]) -> CompiledNamespace<'a> {
        let mut table = NameTable::new();
        // Pass 1: intern, in a deterministic order (zone installation
        // order, then sorted record-set keys / policy owners — the
        // underlying maps iterate in arbitrary order).
        for zone in ns.zones() {
            table.intern(zone.origin());
            let mut sets: Vec<(&Name, u16, &[ResourceRecord])> = zone.record_sets().collect();
            sets.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
            for (name, _, rrs) in &sets {
                table.intern(name);
                for rr in *rrs {
                    match &rr.rdata {
                        RData::Cname(target) | RData::Ns(target) => {
                            table.intern(target);
                        }
                        _ => {}
                    }
                }
            }
            let mut owners: Vec<&Name> = zone.policy_entries().map(|(n, _)| n).collect();
            owners.sort();
            for owner in owners {
                table.intern(owner);
            }
        }
        for name in extra {
            table.intern(name);
        }
        table.shrink_to_fit();
        // Pass 2: freeze each zone.
        let zones: Vec<CompiledZone<'a>> = ns
            .zones()
            .iter()
            .map(|zone| {
                let origin = table.get(zone.origin()).expect("origin interned");
                let mut sets: Vec<(&Name, u16, &[ResourceRecord])> = zone.record_sets().collect();
                sets.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
                let mut arena = Vec::with_capacity(sets.iter().map(|(_, _, rrs)| rrs.len()).sum());
                let mut statics =
                    HashMap::with_capacity_and_hasher(sets.len(), FnvBuildHasher);
                for (name, qtype, rrs) in sets {
                    let id = table.get(name).expect("owner interned");
                    let start = arena.len() as u32;
                    arena.extend(rrs.iter().map(|rr| compiled_rr(&table, rr)));
                    statics.insert((id.0, qtype), (start, arena.len() as u32));
                }
                let policies = zone
                    .policy_entries()
                    .map(|(name, policy)| {
                        (table.get(name).expect("owner interned").0, &**policy)
                    })
                    .collect();
                CompiledZone { origin, policies, statics, arena }
            })
            .collect();
        // Pass 3: per-name metadata.
        let meta = table.iter().map(|(_, name)| meta_for(ns, name)).collect();
        let compile_id = COMPILE_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        CompiledNamespace { ns, table, meta, zones, compile_id }
    }

    /// The shared name table (read-only after compile).
    pub fn table(&self) -> &NameTable {
        &self.table
    }

    /// A process-unique id for this compilation, assigned monotonically.
    /// Two resolutions against equal compile ids saw the *same frozen
    /// namespace object*; the incremental engine folds this into its
    /// version vector so a recompile (even of an identical namespace)
    /// conservatively invalidates every reused answer.
    pub fn compile_id(&self) -> u64 {
        self.compile_id
    }

    /// The memo scope answers at `id` would be shared under for a client
    /// in `locode` — exactly the key component
    /// [`resolve`](InternedResolver::resolve) uses, exposed so the
    /// incremental engine can reconstruct a replayed resolution's memo
    /// contributions from its trace.
    pub fn memo_scope_in(
        &self,
        scratch: &ResolveScratch,
        id: NameId,
        locode: mcdn_geo::Locode,
    ) -> Option<MemoScope> {
        MemoScope::for_query(self.meta_of(&scratch.overlay, id).scope, locode)
    }

    /// The namespace this was compiled from.
    pub fn namespace(&self) -> &'a Namespace {
        self.ns
    }

    /// The id for `name`, interning into the scratch overlay if the
    /// compiled table does not know it.
    pub fn intern_in(&self, scratch: &mut ResolveScratch, name: &Name) -> NameId {
        self.id_of(&mut scratch.overlay, name)
    }

    fn id_of(&self, overlay: &mut Overlay, name: &Name) -> NameId {
        if let Some(id) = self.table.get(name) {
            return id;
        }
        let base = self.table.len() as u32;
        if let Some(&off) = overlay.ids.get(name) {
            return NameId(base + off);
        }
        let off = overlay.names.len() as u32;
        overlay.ids.insert(name.clone(), off);
        overlay.names.push(name.clone());
        overlay.fnvs.push(display_fnv(name));
        overlay.meta.push(meta_for(self.ns, name));
        NameId(base + off)
    }

    fn meta_of(&self, overlay: &Overlay, id: NameId) -> CompiledMeta {
        let idx = id.index();
        if idx < self.table.len() {
            self.meta[idx]
        } else {
            overlay.meta[idx - self.table.len()]
        }
    }

    /// The FNV-1a digest of the name's display form (the fault-key
    /// prefix), precomputed at intern time.
    pub fn fnv_in(&self, scratch: &ResolveScratch, id: NameId) -> u64 {
        let idx = id.index();
        if idx < self.table.len() {
            self.table.fnv(id)
        } else {
            scratch.overlay.fnvs[idx - self.table.len()]
        }
    }

    /// The name behind `id`, whether table or overlay.
    pub fn name_in<'s>(&'s self, scratch: &'s ResolveScratch, id: NameId) -> &'s Name {
        self.name_of(&scratch.overlay, id)
    }

    /// [`CompiledNamespace::name_in`] against a bare overlay — lets the
    /// resolver borrow the overlay and the answer buffer of one scratch
    /// disjointly (bailiwick filtering reads names while retaining).
    fn name_of<'s>(&'s self, overlay: &'s Overlay, id: NameId) -> &'s Name {
        let idx = id.index();
        if idx < self.table.len() {
            self.table.name(id)
        } else {
            &overlay.names[idx - self.table.len()]
        }
    }

    fn runtime_rr(&self, overlay: &mut Overlay, rr: &ResourceRecord) -> IRecord {
        let name = self.id_of(overlay, &rr.name);
        let rdata = match &rr.rdata {
            RData::A(a) => IRData::A(*a),
            RData::Cname(t) => IRData::Cname(self.id_of(overlay, t)),
            RData::Ns(t) => IRData::Ns(self.id_of(overlay, t)),
            other => IRData::Opaque(other.rtype().to_u16()),
        };
        IRecord { name, ttl: rr.ttl, rdata }
    }

    /// Replicates [`Namespace::query`] against the compiled form, writing
    /// any records into `out`.
    fn query_into(
        &self,
        overlay: &mut Overlay,
        out: &mut Vec<IRecord>,
        current: NameId,
        qtype: RecordType,
        ctx: &QueryContext,
    ) -> (IAnswer, Option<NameId>) {
        out.clear();
        let meta = self.meta_of(overlay, current);
        let Some(zi) = meta.authority else {
            return (IAnswer::NxDomain, None);
        };
        let zone = &self.zones[zi as usize];
        let origin = zone.origin;
        let idx = current.index();
        if idx < self.table.len() {
            if let Some(policy) = zone.policies.get(&current.0) {
                // The policy's own Vec allocation is its internal business
                // (workspace policies answer from precomputed state); the
                // records are immediately re-interned into the scratch.
                for rr in policy.respond(qtype, ctx) {
                    let ir = self.runtime_rr(overlay, &rr);
                    out.push(ir);
                }
                return (IAnswer::Records, Some(origin));
            }
            if let Some(&(s, e)) = zone.statics.get(&(current.0, qtype.to_u16())) {
                out.extend_from_slice(&zone.arena[s as usize..e as usize]);
                return (IAnswer::Records, Some(origin));
            }
            if qtype != RecordType::Cname {
                if let Some(&(s, e)) = zone.statics.get(&(current.0, RecordType::Cname.to_u16())) {
                    out.extend_from_slice(&zone.arena[s as usize..e as usize]);
                    return (IAnswer::Records, Some(origin));
                }
            }
            if meta.exists {
                (IAnswer::NoData, Some(origin))
            } else {
                (IAnswer::NxDomain, Some(origin))
            }
        } else {
            // Overlay name: cold path through the string-keyed zone.
            let name = overlay.names[idx - self.table.len()].clone();
            match self.ns.zones()[zi as usize].answer(&name, qtype, ctx) {
                ZoneAnswer::Records(rrs) => {
                    for rr in &rrs {
                        let ir = self.runtime_rr(overlay, rr);
                        out.push(ir);
                    }
                    (IAnswer::Records, Some(origin))
                }
                ZoneAnswer::NoData => (IAnswer::NoData, Some(origin)),
                ZoneAnswer::NxDomain => (IAnswer::NxDomain, Some(origin)),
            }
        }
    }

    /// Rebuilds a string-keyed [`ResolutionTrace`] from an interned one
    /// (tests, debugging, ad-hoc inspection — allocates freely). Lossy
    /// only for non-A/CNAME rdata, which materializes as an empty
    /// `RData::Other` of the same wire type.
    pub fn materialize_trace(&self, scratch: &ResolveScratch, trace: &ITrace) -> ResolutionTrace {
        let steps = trace
            .steps()
            .iter()
            .map(|step| TraceStep {
                qname: self.name_in(scratch, step.qname).clone(),
                qtype: step.qtype,
                records: trace
                    .records_of(step)
                    .iter()
                    .map(|r| {
                        let rdata = match r.rdata {
                            IRData::A(a) => RData::A(a),
                            IRData::Cname(t) => RData::Cname(self.name_in(scratch, t).clone()),
                            IRData::Ns(t) => RData::Ns(self.name_in(scratch, t).clone()),
                            IRData::Opaque(t) => RData::Other(t, Vec::new()),
                        };
                        ResourceRecord::new(self.name_in(scratch, r.name).clone(), r.ttl, rdata)
                    })
                    .collect(),
                from_cache: step.from_cache,
                zone: step.zone.map(|z| self.name_in(scratch, z).clone()),
            })
            .collect();
        ResolutionTrace { steps }
    }
}

/// One step of an interned trace; records live in the trace's arena.
#[derive(Debug, Clone, Copy)]
pub struct ITraceStep {
    /// The name queried at this step.
    pub qname: NameId,
    /// The type queried.
    pub qtype: RecordType,
    rec_start: u32,
    rec_end: u32,
    /// Whether the answer came from the probe's cache.
    pub from_cache: bool,
    /// Origin of the answering zone (authoritative answers only).
    pub zone: Option<NameId>,
}

/// An interned resolution trace: steps plus a flat record arena, both
/// reused across resolutions.
#[derive(Debug, Default)]
pub struct ITrace {
    steps: Vec<ITraceStep>,
    records: Vec<IRecord>,
}

impl ITrace {
    fn clear(&mut self) {
        self.steps.clear();
        self.records.clear();
    }

    fn push(
        &mut self,
        qname: NameId,
        qtype: RecordType,
        records: &[IRecord],
        from_cache: bool,
        zone: Option<NameId>,
    ) {
        let rec_start = self.records.len() as u32;
        self.records.extend_from_slice(records);
        self.steps.push(ITraceStep {
            qname,
            qtype,
            rec_start,
            rec_end: self.records.len() as u32,
            from_cache,
            zone,
        });
    }

    /// The steps, in resolution order.
    pub fn steps(&self) -> &[ITraceStep] {
        &self.steps
    }

    /// The records answered at `step`.
    pub fn records_of(&self, step: &ITraceStep) -> &[IRecord] {
        &self.records[step.rec_start as usize..step.rec_end as usize]
    }

    /// Every A-record address in the trace, in step-then-record order —
    /// the interned [`ResolutionTrace::addresses`].
    pub fn addresses(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.records.iter().filter_map(|r| match r.rdata {
            IRData::A(a) => Some(a),
            _ => None,
        })
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// What the most recent resolution *depended on* and *did to the cache* —
/// the scalar summary the incremental engine turns into a reuse slot.
/// Maintained by every resolve call as plain scalar updates (no
/// allocation, no branching beyond what the resolver already does), so
/// recording is always on.
#[derive(Debug, Clone, Copy)]
pub struct DepRecord {
    /// Union of the declared [`PolicyDeps`] of every authoritatively
    /// answered (non-cache) step. Cache hits contribute nothing: a cached
    /// answer is served as stored regardless of what changed upstream.
    pub deps: PolicyDeps,
    /// Earliest absolute expiry among the cache entries that served hit
    /// steps, or `None` if no step hit. Replaying at `t' >=` this instant
    /// would turn a recorded hit into a miss.
    pub min_hit_expiry: Option<SimTime>,
    /// Largest effective entry TTL among this resolution's cache stores
    /// (min record TTL clamped to [`MAX_CACHE_TTL`]; [`NEGATIVE_TTL`] for
    /// empty answers). Replaying before every stored entry has expired
    /// would turn a recorded miss into a hit.
    pub max_put_ttl: u32,
}

impl Default for DepRecord {
    fn default() -> DepRecord {
        DepRecord { deps: PolicyDeps::none(), min_hit_expiry: None, max_put_ttl: 0 }
    }
}

impl DepRecord {
    fn reset(&mut self) {
        *self = DepRecord::default();
    }

    fn note_hit(&mut self, expires: SimTime) {
        self.min_hit_expiry = Some(match self.min_hit_expiry {
            Some(e) if e <= expires => e,
            _ => expires,
        });
    }

    fn note_put(&mut self, ttl: u32) {
        self.max_put_ttl = self.max_put_ttl.max(ttl);
    }
}

/// Caller-owned scratch state for interned resolution: the answer
/// buffer, the trace arena, and the overlay interner. One per shard,
/// reused across every probe and round — this is what makes the
/// steady-state loop allocation-free.
#[derive(Debug, Default)]
pub struct ResolveScratch {
    overlay: Overlay,
    answer: Vec<IRecord>,
    trace: ITrace,
    deps: DepRecord,
}

impl ResolveScratch {
    /// Fresh scratch state.
    pub fn new() -> ResolveScratch {
        ResolveScratch::default()
    }

    /// The trace of the most recent resolution.
    pub fn trace(&self) -> &ITrace {
        &self.trace
    }

    /// The dependency/cache-effect summary of the most recent resolution.
    pub fn dep_record(&self) -> DepRecord {
        self.deps
    }

    /// The overlay interner (names outside the compiled table).
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }
}

#[derive(Debug, Clone)]
struct IEntry {
    records: Vec<IRecord>,
    expires: SimTime,
}

/// The id-keyed TTL cache: [`crate::Cache`] semantics (absolute expiry,
/// remaining-TTL clamp on hit, min-TTL/negative-TTL expiry on store)
/// without `Name` clones. Entry buffers are reused on re-store, so a
/// warm cache neither allocates nor frees.
#[derive(Debug, Clone, Default)]
pub struct ICache {
    entries: HashMap<(u32, u16), IEntry, FnvBuildHasher>,
    hits: u64,
    misses: u64,
}

impl ICache {
    /// Looks up `id`/`qtype` at `now`, writing the records (TTLs clamped
    /// to the remaining lifetime) into `out` on a hit. Returns the
    /// serving entry's absolute expiry on a hit (the instant this lookup
    /// would flip to a miss).
    fn get_into(
        &mut self,
        id: NameId,
        qtype: u16,
        now: SimTime,
        out: &mut Vec<IRecord>,
    ) -> Option<SimTime> {
        let key = (id.0, qtype);
        match self.entries.get(&key) {
            Some(e) if now < e.expires => {
                self.hits += 1;
                mcdn_obs::record(mcdn_obs::id::CACHE_HITS, 1);
                let remaining = e.expires.since(now).as_secs() as u32;
                out.clear();
                out.extend(e.records.iter().map(|r| IRecord { ttl: r.ttl.min(remaining), ..*r }));
                Some(e.expires)
            }
            _ => {
                self.misses += 1;
                mcdn_obs::record(mcdn_obs::id::CACHE_MISSES, 1);
                // Present but past expiry: the expired subclassification
                // is process-class telemetry (a replayed reuse delta
                // keeps its recording round's split).
                if self.entries.remove(&key).is_some() {
                    mcdn_obs::record(mcdn_obs::id::CACHE_EXPIRED, 1);
                }
                None
            }
        }
    }

    /// Stores an answer, returning the entry's effective TTL (the min
    /// clamped record TTL; [`NEGATIVE_TTL`] for empty answers) — the
    /// seconds until a lookup of this key flips back to a miss.
    fn put(&mut self, id: NameId, qtype: u16, records: &[IRecord], now: SimTime) -> u32 {
        // Same MAX_CACHE_TTL clamp as the string cache: inflated TTLs are
        // capped on the way in, so they cannot pin entries past the ceiling.
        let ttl =
            records.iter().map(|r| r.ttl.min(MAX_CACHE_TTL)).min().unwrap_or(NEGATIVE_TTL);
        let expires = now + Duration::secs(ttl as u64);
        match self.entries.entry((id.0, qtype)) {
            MapEntry::Occupied(mut o) => {
                let e = o.get_mut();
                e.records.clear();
                e.records
                    .extend(records.iter().map(|r| IRecord { ttl: r.ttl.min(MAX_CACHE_TTL), ..*r }));
                e.expires = expires;
            }
            MapEntry::Vacant(v) => {
                v.insert(IEntry {
                    records: records
                        .iter()
                        .map(|r| IRecord { ttl: r.ttl.min(MAX_CACHE_TTL), ..*r })
                        .collect(),
                    expires,
                });
            }
        }
        ttl
    }

    /// `(hits, misses)` counters, mirroring
    /// [`Cache`](crate::Cache) accounting.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of live plus expired entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An id-keyed memo key: the interned form of [`MemoKey`].
pub type IMemoKey = (NameId, RecordType, MemoScope, SimTime);

#[derive(Debug)]
struct IMemoEntry {
    start: u32,
    end: u32,
    zone: Option<NameId>,
    /// Queries served under this key, including the miss that stored it.
    lookups: u64,
}

/// One round's scope-stable answers, id-keyed, with a shared record
/// arena. [`IRoundMemo::clear`] resets it for the next round while
/// keeping capacity, and [`IRoundMemo::counts_into`] canonicalizes the
/// per-key lookup counts back to [`Name`]-keyed [`MemoKey`]s so the
/// engine's cross-shard merge (and therefore every output) is unchanged
/// from the string path.
#[derive(Debug, Default)]
pub struct IRoundMemo {
    entries: HashMap<IMemoKey, IMemoEntry, FnvBuildHasher>,
    arena: Vec<IRecord>,
}

impl IRoundMemo {
    /// An empty memo.
    pub fn new() -> IRoundMemo {
        IRoundMemo::default()
    }

    /// Resets for a new round, retaining allocated capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.arena.clear();
    }

    fn replay_into(&mut self, key: &IMemoKey, out: &mut Vec<IRecord>) -> Option<Option<NameId>> {
        self.entries.get_mut(key).map(|e| {
            e.lookups += 1;
            out.clear();
            out.extend_from_slice(&self.arena[e.start as usize..e.end as usize]);
            e.zone
        })
    }

    fn store(&mut self, key: IMemoKey, records: &[IRecord], zone: Option<NameId>) {
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(records);
        self.entries.insert(
            key,
            IMemoEntry { start, end: self.arena.len() as u32, zone, lookups: 1 },
        );
    }

    /// Number of distinct memoized answers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total lookups of memoizable keys (hits plus storing misses).
    pub fn lookups(&self) -> u64 {
        self.entries.values().map(|e| e.lookups).sum()
    }

    /// Lookups served from the memo (this shard's local view).
    pub fn hits(&self) -> u64 {
        self.lookups() - self.entries.len() as u64
    }

    /// Adds this memo's per-key lookup counts to `out` under canonical
    /// [`Name`]-keyed [`MemoKey`]s — the same shape
    /// [`RoundMemo::into_counts`](crate::RoundMemo::into_counts)
    /// produces, so engine merging is unchanged. Cold path, once per
    /// shard-round.
    pub fn counts_into(
        &self,
        ns: &CompiledNamespace<'_>,
        scratch: &ResolveScratch,
        out: &mut HashMap<MemoKey, u64>,
    ) {
        for (&(id, qtype, scope, t), e) in &self.entries {
            let name = ns.name_in(scratch, id).clone();
            *out.entry((name, qtype, scope, t)).or_insert(0) += e.lookups;
        }
    }
}

/// The interned [`ResolutionError`](crate::ResolutionError): same
/// variants, id-typed names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IResolutionError {
    /// A name in the chain does not exist.
    NxDomain(NameId),
    /// The CNAME chain exceeded [`MAX_CHAIN`] hops.
    ChainTooLong,
    /// The authoritative side failed (injected fault).
    ServFail(NameId),
    /// The query timed out (injected fault).
    Timeout(NameId),
    /// The answer arrived truncated/garbled (injected answer mutation).
    Truncated(NameId),
}

impl IResolutionError {
    /// Whether a retry could plausibly succeed — exactly
    /// [`ResolutionError::is_transient`](crate::ResolutionError::is_transient).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            IResolutionError::ServFail(_)
                | IResolutionError::Timeout(_)
                | IResolutionError::Truncated(_)
        )
    }
}

/// The id-keyed fault hook. The resolver hands over the precomputed
/// display-FNV digests of the zone origin and query name — the exact
/// values the string path derives by hashing `Display` output — so fault
/// models reproduce their keys without formatting anything.
pub trait InternedFaultModel {
    /// Consulted once per authoritative query; returning a fault aborts
    /// the resolution with the corresponding transient error.
    fn upstream_fault(
        &self,
        zone: NameId,
        zone_fnv: u64,
        qname: NameId,
        qname_fnv: u64,
        ctx: &QueryContext,
        attempt: u32,
    ) -> Option<UpstreamFault>;
}

/// The quiet fault model: never faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInternedFaults;

impl InternedFaultModel for NoInternedFaults {
    fn upstream_fault(
        &self,
        _zone: NameId,
        _zone_fnv: u64,
        _qname: NameId,
        _qname_fnv: u64,
        _ctx: &QueryContext,
        _attempt: u32,
    ) -> Option<UpstreamFault> {
        None
    }
}

impl<F> InternedFaultModel for F
where
    F: Fn(NameId, u64, NameId, u64, &QueryContext, u32) -> Option<UpstreamFault> + Send + Sync,
{
    fn upstream_fault(
        &self,
        zone: NameId,
        zone_fnv: u64,
        qname: NameId,
        qname_fnv: u64,
        ctx: &QueryContext,
        attempt: u32,
    ) -> Option<UpstreamFault> {
        self(zone, zone_fnv, qname, qname_fnv, ctx, attempt)
    }
}

/// The interned recursive resolver: the exact decision sequence of
/// [`RecursiveResolver`](crate::RecursiveResolver) (cache → fault hook →
/// memo → authoritative query; NXDOMAIN never cached or memoized) over
/// id-keyed state. Owns the per-probe [`ICache`]; everything else comes
/// in through the [`ResolveScratch`].
#[derive(Debug, Clone, Default)]
pub struct InternedResolver {
    cache: ICache,
}

/// One exported cache cell: `(name id, qtype, absolute expiry, records)`.
/// See [`InternedResolver::cache_export`].
pub type ICacheExportEntry = (u32, u16, SimTime, Vec<IRecord>);

impl InternedResolver {
    /// A resolver with an empty cache.
    pub fn new() -> InternedResolver {
        InternedResolver::default()
    }

    /// Resolves `qname`/`qtype`, leaving the trace in `scratch.trace()`.
    /// Steady-state (warm cache, warm scratch) this performs zero heap
    /// allocations.
    #[allow(clippy::too_many_arguments)] // the superset driver, like resolve_inner
    pub fn resolve(
        &mut self,
        ns: &CompiledNamespace<'_>,
        scratch: &mut ResolveScratch,
        qname: NameId,
        qtype: RecordType,
        ctx: &QueryContext,
        faults: &dyn InternedFaultModel,
        attempt: u32,
        memo: Option<&mut IRoundMemo>,
    ) -> Result<(), IResolutionError> {
        self.resolve_inner(
            ns,
            scratch,
            qname,
            qtype,
            ctx,
            faults,
            &NoInternedMutations,
            BailiwickPolicy::Enforce,
            attempt,
            memo,
        )
    }

    /// The interned twin of
    /// [`RecursiveResolver::resolve_adversarial`](crate::RecursiveResolver::resolve_adversarial):
    /// fault model, answer-mutation model, explicit [`BailiwickPolicy`],
    /// optional memo. [`InternedResolver::resolve`] is this with
    /// [`NoInternedMutations`] and [`BailiwickPolicy::Enforce`].
    #[allow(clippy::too_many_arguments)] // the superset of every entry point
    pub fn resolve_adversarial(
        &mut self,
        ns: &CompiledNamespace<'_>,
        scratch: &mut ResolveScratch,
        qname: NameId,
        qtype: RecordType,
        ctx: &QueryContext,
        faults: &dyn InternedFaultModel,
        mutations: &dyn InternedMutationModel,
        bailiwick: BailiwickPolicy,
        attempt: u32,
        memo: Option<&mut IRoundMemo>,
    ) -> Result<(), IResolutionError> {
        self.resolve_inner(ns, scratch, qname, qtype, ctx, faults, mutations, bailiwick, attempt, memo)
    }

    #[allow(clippy::too_many_arguments)] // private driver behind the entry points
    fn resolve_inner(
        &mut self,
        ns: &CompiledNamespace<'_>,
        scratch: &mut ResolveScratch,
        qname: NameId,
        qtype: RecordType,
        ctx: &QueryContext,
        faults: &dyn InternedFaultModel,
        mutations: &dyn InternedMutationModel,
        bailiwick: BailiwickPolicy,
        attempt: u32,
        mut memo: Option<&mut IRoundMemo>,
    ) -> Result<(), IResolutionError> {
        scratch.trace.clear();
        scratch.deps.reset();
        let mut current = qname;
        for _ in 0..MAX_CHAIN {
            let from_cache;
            let mut zone = None;
            if let Some(expires) =
                self.cache.get_into(current, qtype.to_u16(), ctx.now, &mut scratch.answer)
            {
                from_cache = true;
                scratch.deps.note_hit(expires);
            } else {
                from_cache = false;
                let meta = ns.meta_of(&scratch.overlay, current);
                scratch.deps.deps = scratch.deps.deps.union(meta.deps);
                let mut tamper = None;
                if let Some(zi) = meta.authority {
                    let zorigin = ns.zones[zi as usize].origin;
                    let zone_fnv = ns.fnv_in(scratch, zorigin);
                    let qname_fnv = ns.fnv_in(scratch, current);
                    if let Some(fault) =
                        faults.upstream_fault(zorigin, zone_fnv, current, qname_fnv, ctx, attempt)
                    {
                        scratch.trace.push(current, qtype, &[], false, Some(zorigin));
                        return Err(match fault {
                            UpstreamFault::ServFail => {
                                mcdn_obs::record(mcdn_obs::id::FAULT_SERVFAIL, 1);
                                IResolutionError::ServFail(current)
                            }
                            UpstreamFault::Timeout => {
                                mcdn_obs::record(mcdn_obs::id::FAULT_TIMEOUT, 1);
                                IResolutionError::Timeout(current)
                            }
                        });
                    }
                    // Mutation hook after the fault hook, exactly like the
                    // string path.
                    tamper = mutations
                        .answer_mutation(zorigin, zone_fnv, current, qname_fnv, ctx, attempt);
                    if let Some(t) = &tamper {
                        mcdn_obs::record(
                            match t {
                                ITamper::SpoofA { .. } => mcdn_obs::id::TAMPER_SPOOF_A,
                                ITamper::InjectNs { .. } => mcdn_obs::id::TAMPER_INJECT_NS,
                                ITamper::Truncate => mcdn_obs::id::TAMPER_TRUNCATE,
                                ITamper::InflateTtl { .. } => mcdn_obs::id::TAMPER_INFLATE_TTL,
                            },
                            1,
                        );
                    }
                    if matches!(tamper, Some(ITamper::Truncate)) {
                        scratch.trace.push(current, qtype, &[], false, Some(zorigin));
                        return Err(IResolutionError::Truncated(current));
                    }
                }
                // Tampered queries bypass the memo entirely.
                let memo_key = if memo.is_some() && tamper.is_none() {
                    MemoScope::for_query(meta.scope, ctx.locode)
                        .map(|scope| (current, qtype, scope, ctx.now))
                } else {
                    None
                };
                let mut replayed = None;
                if let (Some(m), Some(key)) = (memo.as_deref_mut(), memo_key.as_ref()) {
                    replayed = m.replay_into(key, &mut scratch.answer);
                }
                match replayed {
                    Some(z) => {
                        mcdn_obs::record(mcdn_obs::id::MEMO_REPLAYS, 1);
                        let ttl =
                            self.cache.put(current, qtype.to_u16(), &scratch.answer, ctx.now);
                        scratch.deps.note_put(ttl);
                        mcdn_obs::record_put(ttl as u64);
                        zone = z;
                    }
                    None => {
                        let (ans, z) = ns.query_into(
                            &mut scratch.overlay,
                            &mut scratch.answer,
                            current,
                            qtype,
                            ctx,
                        );
                        match ans {
                            IAnswer::Records => {
                                if let Some(t) = &tamper {
                                    apply_itamper(&mut scratch.answer, t);
                                }
                                // Bailiwick enforcement, mirroring the
                                // string path: drop out-of-zone owners
                                // before the cache, memo, or trace see
                                // them. Name reads go through the overlay
                                // borrow so the retain stays in place,
                                // allocation-free.
                                if bailiwick == BailiwickPolicy::Enforce {
                                    if let Some(zo) = z {
                                        let ov = &scratch.overlay;
                                        let origin_name = ns.name_of(ov, zo);
                                        let before = scratch.answer.len();
                                        scratch
                                            .answer
                                            .retain(|r| ns.name_of(ov, r.name).is_within(origin_name));
                                        let dropped = before - scratch.answer.len();
                                        if dropped > 0 {
                                            mcdn_obs::record(
                                                mcdn_obs::id::BAILIWICK_DROPS,
                                                dropped as u64,
                                            );
                                        }
                                    }
                                }
                                let ttl = self
                                    .cache
                                    .put(current, qtype.to_u16(), &scratch.answer, ctx.now);
                                scratch.deps.note_put(ttl);
                                mcdn_obs::record_put(ttl as u64);
                                if let (Some(m), Some(key)) = (memo.as_deref_mut(), memo_key) {
                                    m.store(key, &scratch.answer, z);
                                }
                                zone = z;
                            }
                            IAnswer::NoData => {
                                scratch.answer.clear();
                                let ttl = self.cache.put(current, qtype.to_u16(), &[], ctx.now);
                                scratch.deps.note_put(ttl);
                                mcdn_obs::record_put(ttl as u64);
                                if let (Some(m), Some(key)) = (memo.as_deref_mut(), memo_key) {
                                    m.store(key, &[], z);
                                }
                                zone = z;
                            }
                            IAnswer::NxDomain => {
                                scratch.answer.clear();
                                scratch.trace.push(current, qtype, &[], false, None);
                                return Err(IResolutionError::NxDomain(current));
                            }
                        }
                    }
                }
            }
            let next = if qtype != RecordType::Cname {
                scratch.answer.iter().find_map(|r| match r.rdata {
                    IRData::Cname(t) => Some(t),
                    _ => None,
                })
            } else {
                None
            };
            let terminal = scratch.answer.iter().any(|r| r.rtype_u16() == qtype.to_u16());
            scratch.trace.push(current, qtype, &scratch.answer, from_cache, zone);
            match next {
                Some(target) if !terminal => current = target,
                _ => return Ok(()),
            }
        }
        Err(IResolutionError::ChainTooLong)
    }

    /// Resolver cache statistics `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Stores one answer directly, with exactly the semantics of the
    /// store a resolution performs on a cache miss (min-TTL/negative-TTL
    /// expiry, MAX_CACHE_TTL clamp, buffer reuse). The incremental engine
    /// uses this to re-apply a replayed resolution's cache effects at the
    /// new round time without running the resolver.
    pub fn cache_put(&mut self, id: NameId, qtype: u16, records: &[IRecord], now: SimTime) -> u32 {
        self.cache.put(id, qtype, records, now)
    }

    /// Advances the hit/miss counters by the given deltas — the
    /// accounting a replayed resolution would have produced had it run.
    pub fn cache_add_stats(&mut self, hits: u64, misses: u64) {
        self.cache.hits += hits;
        self.cache.misses += misses;
    }

    /// Drops all cached entries (counters survive), mirroring
    /// [`RecursiveResolver::flush`](crate::RecursiveResolver::flush).
    pub fn flush(&mut self) {
        self.cache.entries.clear();
    }

    /// Exports the cache for checkpointing: every entry (live or expired)
    /// sorted by `(name id, qtype)`, plus the `(hits, misses)` counters.
    /// Record [`NameId`]s refer to the campaign's compiled table; the
    /// caller validates them against that table when re-encoding.
    pub fn cache_export(&self) -> (Vec<ICacheExportEntry>, u64, u64) {
        let mut entries: Vec<ICacheExportEntry> = self
            .cache
            .entries
            .iter()
            .map(|(&(id, qtype), e)| (id, qtype, e.expires, e.records.clone()))
            .collect();
        entries.sort_by_key(|&(id, qtype, _, _)| (id, qtype));
        let (hits, misses) = self.cache.stats();
        (entries, hits, misses)
    }

    /// Restores state previously captured by
    /// [`cache_export`](Self::cache_export) — the exact inverse, counters
    /// included, so a resumed campaign's cache behaviour *and* its
    /// reported statistics are bit-identical to an uninterrupted run.
    pub fn cache_restore(&mut self, entries: Vec<ICacheExportEntry>, hits: u64, misses: u64) {
        self.cache.entries.clear();
        for (id, qtype, expires, records) in entries {
            self.cache.entries.insert((id, qtype), IEntry { records, expires });
        }
        self.cache.hits = hits;
        self.cache.misses = misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::NoFaults;
    use crate::resolver::{RecursiveResolver, ResolutionError};
    use crate::zone::Zone;
    use crate::RoundMemo;
    use mcdn_geo::{Continent, Coord, Locode};
    use std::sync::Arc;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ctx(last_octet: u8, locode: &str, continent: Continent, now: SimTime) -> QueryContext {
        QueryContext {
            client_ip: Ipv4Addr::new(198, 51, 100, last_octet),
            locode: Locode::parse(locode).unwrap(),
            coord: Coord::new(0.0, 0.0),
            continent,
            now,
        }
    }

    /// A miniature Meta-CDN chain: static entry CNAME → City-scoped geo
    /// split → Client-scoped GSLB → static A records. Exercises every
    /// answer path (policy, static, CNAME fallback, NODATA, NXDOMAIN).
    fn build_ns() -> Namespace {
        let mut ns = Namespace::new();

        let mut apple = Zone::new(n("apple.com"));
        apple.add_cname("appldnld.apple.com", "appldnld.apple.com.akadns.net", 21600);
        apple.add_a("static.apple.com", Ipv4Addr::new(17, 1, 1, 1), 300);
        ns.add_zone(apple);

        let mut akadns = Zone::new(n("apple.com.akadns.net"));
        akadns.set_policy_scoped(
            n("appldnld.apple.com.akadns.net"),
            Arc::new(|qtype: RecordType, ctx: &QueryContext| {
                if qtype != RecordType::A {
                    return Vec::new(); // IPv4-only mapping
                }
                let target = match ctx.continent {
                    Continent::Europe => "eu.g.applimg.com",
                    _ => "us.g.applimg.com",
                };
                vec![ResourceRecord::new(
                    n("appldnld.apple.com.akadns.net"),
                    120,
                    RData::Cname(n(target)),
                )]
            }),
            PolicyScope::City,
        );
        ns.add_zone(akadns);

        let mut applimg = Zone::new(n("applimg.com"));
        for region in ["eu", "us"] {
            let owner = n(&format!("{region}.g.applimg.com"));
            let record_owner = owner.clone();
            applimg.set_policy(
                owner,
                Arc::new(move |qtype: RecordType, ctx: &QueryContext| {
                    if qtype != RecordType::A {
                        return Vec::new();
                    }
                    let gslb = if ctx.client_ip.octets()[3].is_multiple_of(2) { "a" } else { "b" };
                    vec![ResourceRecord::new(
                        record_owner.clone(),
                        15,
                        RData::Cname(Name::parse(&format!("{gslb}.gslb.applimg.com")).unwrap()),
                    )]
                }),
            );
        }
        applimg.add_a("a.gslb.applimg.com", Ipv4Addr::new(17, 253, 1, 1), 20);
        applimg.add_a("a.gslb.applimg.com", Ipv4Addr::new(17, 253, 1, 2), 20);
        applimg.add_a("b.gslb.applimg.com", Ipv4Addr::new(17, 253, 9, 9), 20);
        ns.add_zone(applimg);

        ns
    }

    /// Resolves on both paths and asserts trace + result + cache stats
    /// agree.
    #[allow(clippy::too_many_arguments)]
    fn assert_equiv(
        ns: &Namespace,
        cns: &CompiledNamespace<'_>,
        string: &mut RecursiveResolver,
        interned: &mut InternedResolver,
        scratch: &mut ResolveScratch,
        qname: &Name,
        qtype: RecordType,
        ctx: &QueryContext,
    ) {
        let (want_trace, want_result) = string.resolve(ns, qname, qtype, ctx);
        let id = cns.intern_in(scratch, qname);
        let got = interned.resolve(cns, scratch, id, qtype, ctx, &NoInternedFaults, 0, None);
        let got_trace = cns.materialize_trace(scratch, scratch.trace());
        assert_eq!(got_trace, want_trace, "trace mismatch for {qname} {qtype:?} at {:?}", ctx.now);
        match (got, want_result) {
            (Ok(()), Ok(())) => {}
            (Err(e), Err(want)) => {
                assert_eq!(materialize_err(cns, scratch, e), want);
            }
            (got, want) => panic!("result mismatch: interned {got:?} vs string {want:?}"),
        }
        assert_eq!(interned.cache_stats(), string.cache_stats(), "cache stats diverged");
    }

    fn materialize_err(
        ns: &CompiledNamespace<'_>,
        scratch: &ResolveScratch,
        e: IResolutionError,
    ) -> ResolutionError {
        match e {
            IResolutionError::NxDomain(id) => {
                ResolutionError::NxDomain(ns.name_in(scratch, id).clone())
            }
            IResolutionError::ChainTooLong => ResolutionError::ChainTooLong,
            IResolutionError::ServFail(id) => {
                ResolutionError::ServFail(ns.name_in(scratch, id).clone())
            }
            IResolutionError::Timeout(id) => {
                ResolutionError::Timeout(ns.name_in(scratch, id).clone())
            }
            IResolutionError::Truncated(id) => {
                ResolutionError::Truncated(ns.name_in(scratch, id).clone())
            }
        }
    }

    #[test]
    fn matches_string_path_across_cache_lifetimes() {
        let ns = build_ns();
        let cns = CompiledNamespace::compile(&ns);
        let mut string = RecursiveResolver::new();
        let mut interned = InternedResolver::new();
        let mut scratch = ResolveScratch::new();
        let t0 = SimTime::from_ymd(2017, 9, 19);
        let entry = n("appldnld.apple.com");
        // Walk the same client through the TTL lifecycle: cold, inside the
        // 15 s GSLB TTL, after it expires, after the 120 s geo TTL, and
        // two hours on. Every step must agree hop for hop.
        for secs in [0u64, 10, 30, 200, 7200] {
            let c = ctx(7, "defra", Continent::Europe, t0 + Duration::secs(secs));
            assert_equiv(
                &ns, &cns, &mut string, &mut interned, &mut scratch, &entry, RecordType::A, &c,
            );
        }
        // A differently-located, differently-addressed client (own caches).
        let mut string2 = RecursiveResolver::new();
        let mut interned2 = InternedResolver::new();
        for secs in [0u64, 40] {
            let c = ctx(8, "usnyc", Continent::NorthAmerica, t0 + Duration::secs(secs));
            assert_equiv(
                &ns, &cns, &mut string2, &mut interned2, &mut scratch, &entry, RecordType::A, &c,
            );
        }
    }

    #[test]
    fn matches_string_path_on_errors_and_nodata() {
        let ns = build_ns();
        let cns = CompiledNamespace::compile(&ns);
        let mut string = RecursiveResolver::new();
        let mut interned = InternedResolver::new();
        let mut scratch = ResolveScratch::new();
        let t0 = SimTime::from_ymd(2017, 9, 19);
        let c = ctx(7, "defra", Continent::Europe, t0);
        // NXDOMAIN inside an authoritative zone (overlay-interned name).
        assert_equiv(
            &ns, &cns, &mut string, &mut interned, &mut scratch,
            &n("nothere.apple.com"), RecordType::A, &c,
        );
        // NXDOMAIN with no authoritative zone at all.
        assert_equiv(
            &ns, &cns, &mut string, &mut interned, &mut scratch,
            &n("nowhere.invalid"), RecordType::A, &c,
        );
        // AAAA through the policy chain: empty (NODATA-like) answer.
        assert_equiv(
            &ns, &cns, &mut string, &mut interned, &mut scratch,
            &n("appldnld.apple.com"), RecordType::Aaaa, &c,
        );
        // Typed miss on a static name → NODATA, negative-cached; repeat
        // inside and after the negative TTL.
        for secs in [0u64, 30, 90] {
            let c = ctx(7, "defra", Continent::Europe, t0 + Duration::secs(secs));
            assert_equiv(
                &ns, &cns, &mut string, &mut interned, &mut scratch,
                &n("static.apple.com"), RecordType::Txt, &c,
            );
        }
        // CNAME qtype returns the CNAME itself without chasing it.
        assert_equiv(
            &ns, &cns, &mut string, &mut interned, &mut scratch,
            &n("appldnld.apple.com"), RecordType::Cname, &c,
        );
    }

    #[test]
    fn matches_string_path_under_faults() {
        let ns = build_ns();
        let cns = CompiledNamespace::compile(&ns);
        let akadns_key = display_fnv(&n("apple.com.akadns.net"));
        let gslb_key = display_fnv(&n("a.gslb.applimg.com"));
        // String-side model: hash the Display forms (as the campaign
        // fault layer does); interned side gets the precomputed digests.
        let string_faults = |zone: &Name, qname: &Name, _ctx: &QueryContext, attempt: u32| {
            let zk = display_fnv(zone);
            let qk = display_fnv(qname);
            if zk == akadns_key && attempt == 0 {
                Some(UpstreamFault::Timeout)
            } else if qk == gslb_key {
                Some(UpstreamFault::ServFail)
            } else {
                None
            }
        };
        let interned_faults = move |_zone: NameId,
                                    zone_fnv: u64,
                                    _qname: NameId,
                                    qname_fnv: u64,
                                    _ctx: &QueryContext,
                                    attempt: u32| {
            if zone_fnv == akadns_key && attempt == 0 {
                Some(UpstreamFault::Timeout)
            } else if qname_fnv == gslb_key {
                Some(UpstreamFault::ServFail)
            } else {
                None
            }
        };
        let mut string = RecursiveResolver::new();
        let mut interned = InternedResolver::new();
        let mut scratch = ResolveScratch::new();
        let t0 = SimTime::from_ymd(2017, 9, 19);
        let entry = n("appldnld.apple.com");
        let entry_id = cns.intern_in(&mut scratch, &entry);
        for attempt in 0..3u32 {
            let c = ctx(2, "defra", Continent::Europe, t0 + Duration::secs(attempt as u64));
            let (want_trace, want_result) =
                string.resolve_with(&ns, &entry, RecordType::A, &c, &string_faults, attempt);
            let got = interned.resolve(
                &cns, &mut scratch, entry_id, RecordType::A, &c, &interned_faults, attempt, None,
            );
            assert_eq!(cns.materialize_trace(&scratch, scratch.trace()), want_trace);
            match (got, want_result) {
                (Ok(()), Ok(())) => {}
                (Err(e), Err(want)) => assert_eq!(materialize_err(&cns, &scratch, e), want),
                (got, want) => panic!("result mismatch: {got:?} vs {want:?}"),
            }
        }
    }

    #[test]
    fn matches_string_path_under_answer_mutations() {
        use crate::mutation::{attacker_ns, attacker_owner, AnswerTamper};

        let ns = build_ns();
        let extra = [attacker_owner(), attacker_ns()];
        let cns = CompiledNamespace::compile_with_extra(&ns, &extra);
        let owner_id = cns.table().get(&attacker_owner()).unwrap();
        let ns_id = cns.table().get(&attacker_ns()).unwrap();
        let akadns_key = display_fnv(&n("apple.com.akadns.net"));
        let applimg_key = display_fnv(&n("applimg.com"));
        let attacker_addr = Ipv4Addr::new(198, 18, 7, 7);

        // One mutation kind per iteration, fired at a fixed zone, under
        // both bailiwick postures; string and interned models key off the
        // same display digests so they fire identically.
        for kind in 0..4u8 {
            for bailiwick in [BailiwickPolicy::Enforce, BailiwickPolicy::Accept] {
                let string_muts = move |zone: &Name, _q: &Name, _c: &QueryContext, _a: u32| {
                    let zk = display_fnv(zone);
                    match kind {
                        0 if zk == akadns_key => Some(AnswerTamper::SpoofA {
                            owner: attacker_owner(),
                            addr: attacker_addr,
                            ttl: 600,
                        }),
                        1 if zk == applimg_key => Some(AnswerTamper::InjectNs {
                            owner: attacker_owner(),
                            target: attacker_ns(),
                            ttl: 600,
                        }),
                        2 if zk == applimg_key => Some(AnswerTamper::Truncate),
                        3 if zk == akadns_key => Some(AnswerTamper::InflateTtl { factor: 10_000 }),
                        _ => None,
                    }
                };
                let interned_muts = move |_z: NameId,
                                          zone_fnv: u64,
                                          _qn: NameId,
                                          _qf: u64,
                                          _c: &QueryContext,
                                          _a: u32| {
                    match kind {
                        0 if zone_fnv == akadns_key => Some(ITamper::SpoofA {
                            owner: owner_id,
                            addr: attacker_addr,
                            ttl: 600,
                        }),
                        1 if zone_fnv == applimg_key => Some(ITamper::InjectNs {
                            owner: owner_id,
                            target: ns_id,
                            ttl: 600,
                        }),
                        2 if zone_fnv == applimg_key => Some(ITamper::Truncate),
                        3 if zone_fnv == akadns_key => Some(ITamper::InflateTtl { factor: 10_000 }),
                        _ => None,
                    }
                };
                let mut string = RecursiveResolver::new();
                let mut interned = InternedResolver::new();
                let mut scratch = ResolveScratch::new();
                let t0 = SimTime::from_ymd(2017, 9, 19);
                let entry = n("appldnld.apple.com");
                let entry_id = cns.intern_in(&mut scratch, &entry);
                // Several rounds so cached poisoned/clean entries interact
                // with later resolutions on both paths.
                for step in 0..4u64 {
                    let c = ctx(2, "defra", Continent::Europe, t0 + Duration::secs(step * 40));
                    let (want_trace, want_result) = string.resolve_adversarial(
                        &ns,
                        &entry,
                        RecordType::A,
                        &c,
                        &NoFaults,
                        &string_muts,
                        bailiwick,
                        0,
                        None,
                    );
                    let got = interned.resolve_adversarial(
                        &cns,
                        &mut scratch,
                        entry_id,
                        RecordType::A,
                        &c,
                        &NoInternedFaults,
                        &interned_muts,
                        bailiwick,
                        0,
                        None,
                    );
                    assert_eq!(
                        cns.materialize_trace(&scratch, scratch.trace()),
                        want_trace,
                        "kind {kind} {bailiwick:?} step {step}"
                    );
                    match (got, want_result) {
                        (Ok(()), Ok(())) => {}
                        (Err(e), Err(want)) => {
                            assert_eq!(materialize_err(&cns, &scratch, e), want)
                        }
                        (got, want) => panic!("result mismatch: {got:?} vs {want:?}"),
                    }
                    assert_eq!(
                        interned.cache_stats(),
                        string.cache_stats(),
                        "cache stats diverged: kind {kind} {bailiwick:?} step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn memo_counts_match_string_path() {
        let ns = build_ns();
        let cns = CompiledNamespace::compile(&ns);
        let t0 = SimTime::from_ymd(2017, 9, 19);
        let entry = n("appldnld.apple.com");
        // Six clients: three in Frankfurt, two in New York, one in Berlin —
        // Global answers shared by all, City answers shared per city,
        // Client answers never memoized.
        let clients = [
            (1u8, "defra", Continent::Europe),
            (2, "defra", Continent::Europe),
            (3, "defra", Continent::Europe),
            (4, "usnyc", Continent::NorthAmerica),
            (5, "usnyc", Continent::NorthAmerica),
            (6, "deber", Continent::Europe),
        ];
        let mut memo = RoundMemo::new();
        let mut imemo = IRoundMemo::new();
        let mut scratch = ResolveScratch::new();
        let mut want_traces = Vec::new();
        for &(ip, loc, cont) in &clients {
            let mut r = RecursiveResolver::new();
            let c = ctx(ip, loc, cont, t0);
            let (trace, result) =
                r.resolve_memoized(&ns, &entry, RecordType::A, &c, &NoFaults, 0, &mut memo);
            assert!(result.is_ok());
            want_traces.push(trace);
        }
        for (i, &(ip, loc, cont)) in clients.iter().enumerate() {
            let mut r = InternedResolver::new();
            let c = ctx(ip, loc, cont, t0);
            let id = cns.intern_in(&mut scratch, &entry);
            let result = r.resolve(
                &cns, &mut scratch, id, RecordType::A, &c, &NoInternedFaults, 0, Some(&mut imemo),
            );
            assert!(result.is_ok());
            assert_eq!(
                cns.materialize_trace(&scratch, scratch.trace()),
                want_traces[i],
                "memoized trace mismatch for client {i}"
            );
        }
        assert_eq!(imemo.len(), memo.len());
        assert_eq!(imemo.lookups(), memo.lookups());
        assert_eq!(imemo.hits(), memo.hits());
        let mut got_counts = HashMap::new();
        imemo.counts_into(&cns, &scratch, &mut got_counts);
        assert_eq!(got_counts, memo.into_counts());
    }

    #[test]
    fn memo_clear_retains_capacity_and_resets_counts() {
        let mut m = IRoundMemo::new();
        let key = (
            NameId(0),
            RecordType::A,
            MemoScope::Global,
            SimTime::from_ymd(2017, 9, 19),
        );
        m.store(key, &[], None);
        assert_eq!(m.len(), 1);
        m.clear();
        assert_eq!(m.len(), 0);
        assert_eq!(m.lookups(), 0);
        assert!(m.is_empty());
    }

    /// The dep record underpinning cross-round reuse: deps stay empty on
    /// an all-static chain, stores report the *effective* (7-day-clamped)
    /// TTL, and hits report the earliest absolute expiry — the exact
    /// bounds the incremental engine replays against.
    #[test]
    fn dep_record_tracks_ttl_geometry_with_seven_day_clamp() {
        let mut ns = Namespace::new();
        let mut z = Zone::new(n("apple.com"));
        z.add_cname("dl.apple.com", "pin.apple.com", 21600);
        // Nominal 60-day TTL: the cache must clamp the entry (and the
        // dep record must report the clamped lifetime, or a reuse slot
        // would sleep through the forced 7-day re-resolution).
        z.add_a("pin.apple.com", Ipv4Addr::new(17, 9, 9, 9), 60 * 86_400);
        ns.add_zone(z);
        let cns = CompiledNamespace::compile(&ns);
        let mut scratch = ResolveScratch::new();
        let mut r = InternedResolver::new();
        let t0 = SimTime::from_ymd(2017, 9, 18);
        let id = cns.intern_in(&mut scratch, &n("dl.apple.com"));
        let c0 = ctx(1, "deber", Continent::Europe, t0);
        r.resolve(&cns, &mut scratch, id, RecordType::A, &c0, &NoInternedFaults, 0, None)
            .unwrap();
        let dep = scratch.dep_record();
        assert!(dep.deps.is_none(), "static chain must declare no policy deps");
        assert_eq!(dep.min_hit_expiry, None, "cold resolution hits nothing");
        assert_eq!(dep.max_put_ttl, crate::MAX_CACHE_TTL);
        // Warm re-resolution inside every TTL: both steps hit, nothing is
        // stored, and the binding expiry is the shorter CNAME's.
        let t1 = t0 + Duration::secs(600);
        let c1 = ctx(1, "deber", Continent::Europe, t1);
        r.resolve(&cns, &mut scratch, id, RecordType::A, &c1, &NoInternedFaults, 0, None)
            .unwrap();
        let dep = scratch.dep_record();
        assert_eq!(dep.max_put_ttl, 0);
        assert_eq!(dep.min_hit_expiry, Some(t0 + Duration::secs(21600)));
    }

    #[test]
    fn overlay_interning_is_idempotent_and_past_table() {
        let ns = build_ns();
        let cns = CompiledNamespace::compile(&ns);
        let mut scratch = ResolveScratch::new();
        let stranger = n("stranger.example.net");
        let a = cns.intern_in(&mut scratch, &stranger);
        let b = cns.intern_in(&mut scratch, &stranger);
        assert_eq!(a, b);
        assert!(a.index() >= cns.table().len());
        assert_eq!(cns.name_in(&scratch, a), &stranger);
        assert_eq!(cns.fnv_in(&scratch, a), display_fnv(&stranger));
        // Table names keep their table ids.
        let origin = cns.intern_in(&mut scratch, &n("apple.com"));
        assert!(origin.index() < cns.table().len());
    }
}
