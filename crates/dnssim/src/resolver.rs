//! Recursive resolution with CNAME chasing and full tracing.

use crate::cache::Cache;
use crate::context::QueryContext;
use crate::faults::{FaultModel, NoFaults, UpstreamFault};
use crate::memo::{MemoScope, RoundMemo};
use crate::mutation::{apply_tamper, AnswerTamper, BailiwickPolicy, MutationModel, NoMutations};
use crate::zone::{Namespace, ZoneAnswer};
use mcdn_dnswire::{Name, RData, RecordType, ResourceRecord};
use std::net::Ipv4Addr;

/// Longest CNAME chain we will follow. The Apple mapping chain of Figure 2
/// has at most five edges; real resolvers commonly cap around 8–16.
pub const MAX_CHAIN: usize = 16;

/// One step of a resolution: a single question asked of one zone (or served
/// from cache).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// The name asked.
    pub qname: Name,
    /// The type asked.
    pub qtype: RecordType,
    /// Records received (empty = NODATA).
    pub records: Vec<ResourceRecord>,
    /// Whether this step was answered from the resolver cache.
    pub from_cache: bool,
    /// Origin of the answering zone (`None` if cached or NXDOMAIN'd at root).
    pub zone: Option<Name>,
}

/// The complete record of one recursive resolution.
///
/// The sequence of CNAME edges with their TTLs in `steps` is the measured
/// object behind Figure 2; [`ResolutionTrace::addresses`] are the cache IPs
/// counted in Figures 4 and 5.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResolutionTrace {
    /// Steps in order.
    pub steps: Vec<TraceStep>,
}

impl ResolutionTrace {
    /// All terminal A-record addresses.
    pub fn addresses(&self) -> Vec<Ipv4Addr> {
        let mut out = Vec::new();
        for step in &self.steps {
            for rr in &step.records {
                if let RData::A(a) = rr.rdata {
                    out.push(a);
                }
            }
        }
        out
    }

    /// The CNAME chain as `(owner, target, ttl)` edges, in resolution order.
    pub fn cname_edges(&self) -> Vec<(Name, Name, u32)> {
        let mut out = Vec::new();
        for step in &self.steps {
            for rr in &step.records {
                if let RData::Cname(target) = &rr.rdata {
                    out.push((rr.name.clone(), target.clone(), rr.ttl));
                }
            }
        }
        out
    }

    /// The final name that produced the terminal records (last qname).
    pub fn terminal_name(&self) -> Option<&Name> {
        self.steps.last().map(|s| &s.qname)
    }
}

/// Why a resolution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolutionError {
    /// A name in the chain does not exist.
    NxDomain(Name),
    /// The CNAME chain exceeded [`MAX_CHAIN`] hops.
    ChainTooLong,
    /// An authoritative zone answered SERVFAIL while resolving this name
    /// (injected via a [`crate::faults::FaultModel`]; transient —
    /// retryable).
    ServFail(Name),
    /// An upstream query for this name timed out (injected via a
    /// [`crate::faults::FaultModel`]; transient — retryable).
    Timeout(Name),
    /// The authoritative answer for this name arrived truncated or garbled
    /// beyond use (injected via a [`crate::mutation::MutationModel`];
    /// transient — retryable, like a real resolver falling back after a
    /// malformed UDP response).
    Truncated(Name),
}

impl ResolutionError {
    /// Whether this failure is transient, i.e. a retry may succeed.
    /// NXDOMAIN and over-long chains are authoritative facts; SERVFAIL and
    /// timeouts are weather.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ResolutionError::ServFail(_)
                | ResolutionError::Timeout(_)
                | ResolutionError::Truncated(_)
        )
    }
}

impl core::fmt::Display for ResolutionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ResolutionError::NxDomain(n) => write!(f, "NXDOMAIN for {n}"),
            ResolutionError::ChainTooLong => write!(f, "CNAME chain too long"),
            ResolutionError::ServFail(n) => write!(f, "SERVFAIL while resolving {n}"),
            ResolutionError::Timeout(n) => write!(f, "upstream timeout while resolving {n}"),
            ResolutionError::Truncated(n) => {
                write!(f, "truncated/malformed answer while resolving {n}")
            }
        }
    }
}

impl std::error::Error for ResolutionError {}

/// A recursive resolver with its own cache, as run by each probe.
#[derive(Debug, Clone, Default)]
pub struct RecursiveResolver {
    cache: Cache,
}

impl RecursiveResolver {
    /// A resolver with a cold cache.
    pub fn new() -> RecursiveResolver {
        RecursiveResolver::default()
    }

    /// Resolves `qname`/`qtype` against `ns`, chasing CNAMEs, consulting and
    /// filling the cache. Returns the trace even on failure (callers log
    /// what the probe saw before the error). Equivalent to
    /// [`RecursiveResolver::resolve_with`] under [`NoFaults`].
    pub fn resolve(
        &mut self,
        ns: &Namespace,
        qname: &Name,
        qtype: RecordType,
        ctx: &QueryContext,
    ) -> (ResolutionTrace, Result<(), ResolutionError>) {
        self.resolve_with(ns, qname, qtype, ctx, &NoFaults, 0)
    }

    /// Like [`RecursiveResolver::resolve`], but consults `faults` before
    /// every upstream query (cache hits are never faulted — caches mask
    /// authoritative outages, as in the real DNS). `attempt` is the
    /// caller's 0-based retry counter, passed through so the fault model
    /// can redraw per attempt. A faulted step is recorded in the trace
    /// with no records before the error is returned.
    pub fn resolve_with(
        &mut self,
        ns: &Namespace,
        qname: &Name,
        qtype: RecordType,
        ctx: &QueryContext,
        faults: &dyn FaultModel,
        attempt: u32,
    ) -> (ResolutionTrace, Result<(), ResolutionError>) {
        self.resolve_inner(
            ns,
            qname,
            qtype,
            ctx,
            faults,
            &NoMutations,
            BailiwickPolicy::Enforce,
            attempt,
            None,
        )
    }

    /// Like [`RecursiveResolver::resolve_with`], additionally consulting a
    /// per-round [`RoundMemo`] for answers whose zone declared a
    /// memoizable [`crate::PolicyScope`]. The fault hook runs *before* the
    /// memo, so a perturbed query bypasses memoization; replayed answers
    /// are byte-for-byte what the authoritative query produced, so the
    /// resolution (trace, cache effects and all) is bit-identical with the
    /// memo on or off.
    #[allow(clippy::too_many_arguments)] // the memo-bearing superset of resolve_with
    pub fn resolve_memoized(
        &mut self,
        ns: &Namespace,
        qname: &Name,
        qtype: RecordType,
        ctx: &QueryContext,
        faults: &dyn FaultModel,
        attempt: u32,
        memo: &mut RoundMemo,
    ) -> (ResolutionTrace, Result<(), ResolutionError>) {
        self.resolve_inner(
            ns,
            qname,
            qtype,
            ctx,
            faults,
            &NoMutations,
            BailiwickPolicy::Enforce,
            attempt,
            Some(memo),
        )
    }

    /// The full adversarial entry point: a fault model, an answer-mutation
    /// model, an explicit [`BailiwickPolicy`], and an optional round memo.
    /// Every other entry point is this with [`NoMutations`] and
    /// [`BailiwickPolicy::Enforce`]. A tampered query bypasses the memo
    /// (like faulted queries do), so replayed answers are always the
    /// untampered authoritative ones.
    #[allow(clippy::too_many_arguments)] // the superset of every entry point
    pub fn resolve_adversarial(
        &mut self,
        ns: &Namespace,
        qname: &Name,
        qtype: RecordType,
        ctx: &QueryContext,
        faults: &dyn FaultModel,
        mutations: &dyn MutationModel,
        bailiwick: BailiwickPolicy,
        attempt: u32,
        memo: Option<&mut RoundMemo>,
    ) -> (ResolutionTrace, Result<(), ResolutionError>) {
        self.resolve_inner(ns, qname, qtype, ctx, faults, mutations, bailiwick, attempt, memo)
    }

    #[allow(clippy::too_many_arguments)] // private driver behind the entry points
    fn resolve_inner(
        &mut self,
        ns: &Namespace,
        qname: &Name,
        qtype: RecordType,
        ctx: &QueryContext,
        faults: &dyn FaultModel,
        mutations: &dyn MutationModel,
        bailiwick: BailiwickPolicy,
        attempt: u32,
        mut memo: Option<&mut RoundMemo>,
    ) -> (ResolutionTrace, Result<(), ResolutionError>) {
        let mut trace = ResolutionTrace::default();
        let mut current = qname.clone();
        for _ in 0..MAX_CHAIN {
            // Cache first.
            let (records, from_cache, zone) = match self.cache.get(&current, qtype, ctx.now) {
                Some(cached) => (cached, true, None),
                None => {
                    let authority = ns.authority_for(&current);
                    let faulted = authority
                        .and_then(|z| faults.upstream_fault(z.origin(), &current, ctx, attempt));
                    if let Some(fault) = faulted {
                        trace.steps.push(TraceStep {
                            qname: current.clone(),
                            qtype,
                            records: Vec::new(),
                            from_cache: false,
                            zone: authority.map(|z| z.origin().clone()),
                        });
                        let err = match fault {
                            UpstreamFault::ServFail => ResolutionError::ServFail(current),
                            UpstreamFault::Timeout => ResolutionError::Timeout(current),
                        };
                        return (trace, Err(err));
                    }
                    // The mutation hook runs after the fault hook: a query
                    // that never reaches the zone cannot see a tampered
                    // answer.
                    let tamper = authority
                        .and_then(|z| mutations.answer_mutation(z.origin(), &current, ctx, attempt));
                    if matches!(tamper, Some(AnswerTamper::Truncate)) {
                        trace.steps.push(TraceStep {
                            qname: current.clone(),
                            qtype,
                            records: Vec::new(),
                            from_cache: false,
                            zone: authority.map(|z| z.origin().clone()),
                        });
                        return (trace, Err(ResolutionError::Truncated(current)));
                    }
                    // Tampered queries bypass the memo entirely: the memo
                    // must only ever hold clean authoritative answers.
                    let memo_key = match (&memo, &tamper) {
                        (Some(_), None) => MemoScope::for_query(ns.scope_of(&current), ctx.locode)
                            .map(|scope| (current.clone(), qtype, scope, ctx.now)),
                        _ => None,
                    };
                    let replayed = match (memo.as_deref_mut(), &memo_key) {
                        (Some(m), Some(key)) => m.replay(key),
                        _ => None,
                    };
                    if let Some((rrs, zone)) = replayed {
                        // Replay the authoritative answer with identical
                        // cache side effects.
                        self.cache.put(current.clone(), qtype, rrs.clone(), ctx.now);
                        (rrs, false, zone)
                    } else {
                        match ns.query(&current, qtype, ctx) {
                            (ZoneAnswer::Records(mut rrs), zone) => {
                                if let Some(t) = &tamper {
                                    apply_tamper(&mut rrs, t);
                                }
                                // Bailiwick enforcement: drop records whose
                                // owner lies outside the answering zone
                                // before anything downstream (trace, cache,
                                // memo) can see them. A no-op for every
                                // well-formed answer.
                                if bailiwick == BailiwickPolicy::Enforce {
                                    if let Some(origin) = zone {
                                        rrs.retain(|rr| rr.name.is_within(origin));
                                    }
                                }
                                self.cache.put(current.clone(), qtype, rrs.clone(), ctx.now);
                                if let (Some(m), Some(key)) = (memo.as_deref_mut(), memo_key) {
                                    m.store(key, rrs.clone(), zone.cloned());
                                }
                                (rrs, false, zone.cloned())
                            }
                            (ZoneAnswer::NoData, zone) => {
                                self.cache.put(current.clone(), qtype, Vec::new(), ctx.now);
                                if let (Some(m), Some(key)) = (memo.as_deref_mut(), memo_key) {
                                    m.store(key, Vec::new(), zone.cloned());
                                }
                                (Vec::new(), false, zone.cloned())
                            }
                            (ZoneAnswer::NxDomain, _) => {
                                trace.steps.push(TraceStep {
                                    qname: current.clone(),
                                    qtype,
                                    records: Vec::new(),
                                    from_cache: false,
                                    zone: None,
                                });
                                return (trace, Err(ResolutionError::NxDomain(current)));
                            }
                        }
                    }
                }
            };
            let next = records.iter().find_map(|rr| match &rr.rdata {
                RData::Cname(target) if qtype != RecordType::Cname => Some(target.clone()),
                _ => None,
            });
            let terminal = records.iter().any(|rr| rr.rtype() == qtype);
            trace.steps.push(TraceStep {
                qname: current.clone(),
                qtype,
                records,
                from_cache,
                zone,
            });
            match next {
                Some(target) if !terminal => current = target,
                _ => return (trace, Ok(())),
            }
        }
        (trace, Err(ResolutionError::ChainTooLong))
    }

    /// Cache statistics `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Zone;
    use mcdn_geo::{Continent, Coord, Duration, Locode, SimTime};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ctx_at(now: SimTime) -> QueryContext {
        QueryContext {
            client_ip: Ipv4Addr::new(198, 51, 100, 1),
            locode: Locode::parse("defra").unwrap(),
            coord: Coord::new(50.1, 8.7),
            continent: Continent::Europe,
            now,
        }
    }

    /// A miniature three-zone chain mirroring the Apple mapping shape.
    fn namespace() -> Namespace {
        let mut ns = Namespace::new();
        let mut apple = Zone::new(n("apple.com"));
        apple.add_cname("appldnld.apple.com", "appldnld.apple.com.akadns.net", 21600);
        ns.add_zone(apple);
        let mut akadns = Zone::new(n("akadns.net"));
        akadns.add_cname("appldnld.apple.com.akadns.net", "appldnld.g.applimg.com", 120);
        ns.add_zone(akadns);
        let mut applimg = Zone::new(n("applimg.com"));
        applimg.add_cname("appldnld.g.applimg.com", "a.gslb.applimg.com", 15);
        applimg.add_a("a.gslb.applimg.com", Ipv4Addr::new(17, 253, 37, 16), 20);
        ns.add_zone(applimg);
        ns
    }

    #[test]
    fn follows_full_chain() {
        let ns = namespace();
        let mut r = RecursiveResolver::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let (trace, res) = r.resolve(&ns, &n("appldnld.apple.com"), RecordType::A, &ctx_at(t0));
        res.unwrap();
        assert_eq!(trace.addresses(), vec![Ipv4Addr::new(17, 253, 37, 16)]);
        let edges = trace.cname_edges();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0].2, 21600);
        assert_eq!(edges[1].2, 120);
        assert_eq!(edges[2].2, 15);
        assert_eq!(trace.terminal_name(), Some(&n("a.gslb.applimg.com")));
        assert!(trace.steps.iter().all(|s| !s.from_cache));
    }

    #[test]
    fn second_resolution_hits_cache_selectively() {
        let ns = namespace();
        let mut r = RecursiveResolver::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let _ = r.resolve(&ns, &n("appldnld.apple.com"), RecordType::A, &ctx_at(t0));
        // 30 s later: entry (21600) and akadns (120) CNAMEs still cached;
        // the 15 s selector and the 20 s A record have expired.
        let (trace, res) =
            r.resolve(&ns, &n("appldnld.apple.com"), RecordType::A, &ctx_at(t0 + Duration::secs(30)));
        res.unwrap();
        let cached: Vec<bool> = trace.steps.iter().map(|s| s.from_cache).collect();
        assert_eq!(cached, vec![true, true, false, false]);
    }

    #[test]
    fn nxdomain_reported_with_trace() {
        let ns = namespace();
        let mut r = RecursiveResolver::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let (trace, res) = r.resolve(&ns, &n("missing.apple.com"), RecordType::A, &ctx_at(t0));
        assert_eq!(res, Err(ResolutionError::NxDomain(n("missing.apple.com"))));
        assert_eq!(trace.steps.len(), 1);
    }

    #[test]
    fn chain_loop_detected() {
        let mut ns = Namespace::new();
        let mut z = Zone::new(n("loop.test"));
        z.add_cname("a.loop.test", "b.loop.test", 60);
        z.add_cname("b.loop.test", "a.loop.test", 60);
        ns.add_zone(z);
        let mut r = RecursiveResolver::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let (_, res) = r.resolve(&ns, &n("a.loop.test"), RecordType::A, &ctx_at(t0));
        assert_eq!(res, Err(ResolutionError::ChainTooLong));
    }

    #[test]
    fn aaaa_returns_nodata_not_error() {
        let ns = namespace();
        let mut r = RecursiveResolver::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let (trace, res) = r.resolve(&ns, &n("appldnld.apple.com"), RecordType::Aaaa, &ctx_at(t0));
        res.unwrap();
        // The chain is followed, but no AAAA exists at the end.
        assert!(trace.addresses().is_empty());
    }

    /// Faults every upstream query to one zone (cache hits unaffected).
    struct ZoneDown {
        origin: Name,
        fault: UpstreamFault,
    }

    impl FaultModel for ZoneDown {
        fn upstream_fault(
            &self,
            zone: &Name,
            _qname: &Name,
            _ctx: &QueryContext,
            _attempt: u32,
        ) -> Option<UpstreamFault> {
            (*zone == self.origin).then_some(self.fault)
        }
    }

    #[test]
    fn servfail_zone_fails_resolution_with_trace() {
        let ns = namespace();
        let mut r = RecursiveResolver::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let down = ZoneDown { origin: n("akadns.net"), fault: UpstreamFault::ServFail };
        let (trace, res) =
            r.resolve_with(&ns, &n("appldnld.apple.com"), RecordType::A, &ctx_at(t0), &down, 0);
        assert_eq!(
            res,
            Err(ResolutionError::ServFail(n("appldnld.apple.com.akadns.net")))
        );
        assert!(res.unwrap_err().is_transient());
        // The apple.com hop succeeded before the faulted akadns hop.
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(trace.steps[1].zone, Some(n("akadns.net")));
        assert!(trace.steps[1].records.is_empty());
    }

    #[test]
    fn timeouts_are_transient_and_nxdomain_is_not() {
        let ns = namespace();
        let mut r = RecursiveResolver::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let down = ZoneDown { origin: n("apple.com"), fault: UpstreamFault::Timeout };
        let (_, res) =
            r.resolve_with(&ns, &n("appldnld.apple.com"), RecordType::A, &ctx_at(t0), &down, 0);
        let err = res.unwrap_err();
        assert_eq!(err, ResolutionError::Timeout(n("appldnld.apple.com")));
        assert!(err.is_transient());
        assert!(!ResolutionError::NxDomain(n("x.y")).is_transient());
        assert!(!ResolutionError::ChainTooLong.is_transient());
    }

    #[test]
    fn cached_chain_survives_total_zone_outage() {
        // A warm cache masks an authoritative outage until TTLs expire —
        // the graceful-degradation property real resolvers provide.
        let ns = namespace();
        let mut r = RecursiveResolver::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let (_, res) = r.resolve(&ns, &n("appldnld.apple.com"), RecordType::A, &ctx_at(t0));
        res.unwrap();
        let down = ZoneDown { origin: n("akadns.net"), fault: UpstreamFault::ServFail };
        // 10 s later every hop is still cached: resolution succeeds even
        // though akadns.net is down.
        let (trace, res) = r.resolve_with(
            &ns,
            &n("appldnld.apple.com"),
            RecordType::A,
            &ctx_at(t0 + Duration::secs(10)),
            &down,
            0,
        );
        res.unwrap();
        assert!(!trace.addresses().is_empty());
        // After the akadns TTL (120 s) expires, the outage becomes visible.
        let (_, res) = r.resolve_with(
            &ns,
            &n("appldnld.apple.com"),
            RecordType::A,
            &ctx_at(t0 + Duration::secs(300)),
            &down,
            0,
        );
        assert!(matches!(res, Err(ResolutionError::ServFail(_))));
    }

    #[test]
    fn memoized_resolution_is_bit_identical_and_replays_scoped_answers() {
        use crate::zone::PolicyScope;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        // A namespace whose akadns hop is a City-scoped policy that counts
        // how often the authoritative side is actually asked.
        let authoritative_queries = Arc::new(AtomicU64::new(0));
        let build_ns = |counter: Arc<AtomicU64>| {
            let mut ns = Namespace::new();
            let mut apple = Zone::new(n("apple.com"));
            apple.add_cname("appldnld.apple.com", "appldnld.apple.com.akadns.net", 21600);
            ns.add_zone(apple);
            let mut akadns = Zone::new(n("akadns.net"));
            akadns.set_policy_scoped(
                n("appldnld.apple.com.akadns.net"),
                Arc::new(move |_: RecordType, _: &QueryContext| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    vec![ResourceRecord::new(
                        n("appldnld.apple.com.akadns.net"),
                        120,
                        RData::Cname(n("a.gslb.applimg.com")),
                    )]
                }),
                PolicyScope::City,
            );
            ns.add_zone(akadns);
            let mut applimg = Zone::new(n("applimg.com"));
            applimg.add_a("a.gslb.applimg.com", Ipv4Addr::new(17, 253, 37, 16), 20);
            ns.add_zone(applimg);
            ns
        };
        let ns = build_ns(authoritative_queries.clone());
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let q = n("appldnld.apple.com");

        // Plain resolution for reference (fresh resolver per client).
        let plain: Vec<_> = (0..4u8)
            .map(|i| {
                let mut ctx = ctx_at(t0);
                ctx.client_ip = Ipv4Addr::new(198, 51, 100, i);
                RecursiveResolver::new().resolve(&ns, &q, RecordType::A, &ctx)
            })
            .collect();
        let before = authoritative_queries.load(Ordering::Relaxed);

        // Memoized resolution: same city → the City-scoped hop is asked
        // authoritatively once, replayed three times, bit-identically.
        let mut memo = RoundMemo::new();
        let memoized: Vec<_> = (0..4u8)
            .map(|i| {
                let mut ctx = ctx_at(t0);
                ctx.client_ip = Ipv4Addr::new(198, 51, 100, i);
                RecursiveResolver::new()
                    .resolve_memoized(&ns, &q, RecordType::A, &ctx, &NoFaults, 0, &mut memo)
            })
            .collect();
        assert_eq!(plain, memoized, "memo on/off must not change any resolution");
        let after = authoritative_queries.load(Ordering::Relaxed);
        assert_eq!(before, 4, "plain: every client walks the policy");
        assert_eq!(after - before, 1, "memoized: one walk, three replays");
        assert!(memo.hits() > 0);
        // Global statics (entry CNAME, terminal A) memoize too: 3 keys.
        assert_eq!(memo.len(), 3);
        assert_eq!(memo.lookups(), 12);
        assert_eq!(memo.hits(), 9);
    }

    #[test]
    fn spoofed_records_are_dropped_under_enforce_and_land_under_accept() {
        let ns = namespace();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let attacker = crate::mutation::attacker_owner();
        let attacker_addr = Ipv4Addr::new(198, 18, 0, 9);
        let spoof = {
            let attacker = attacker.clone();
            move |zone: &Name, _q: &Name, _c: &QueryContext, _a: u32| {
                (*zone == n("akadns.net")).then(|| AnswerTamper::SpoofA {
                    owner: attacker.clone(),
                    addr: attacker_addr,
                    ttl: 600,
                })
            }
        };
        // Enforce drops the out-of-bailiwick record before anything sees
        // it: the whole resolution is bit-identical to the clean one.
        let clean =
            RecursiveResolver::new().resolve(&ns, &n("appldnld.apple.com"), RecordType::A, &ctx_at(t0));
        let enforced = RecursiveResolver::new().resolve_adversarial(
            &ns,
            &n("appldnld.apple.com"),
            RecordType::A,
            &ctx_at(t0),
            &NoFaults,
            &spoof,
            BailiwickPolicy::Enforce,
            0,
            None,
        );
        assert_eq!(clean, enforced, "enforcement must neutralize the spoof exactly");
        // Accept: the attacker A record satisfies the terminal check at
        // the tampered hop, so the chase halts there mis-mapped.
        let (trace, res) = RecursiveResolver::new().resolve_adversarial(
            &ns,
            &n("appldnld.apple.com"),
            RecordType::A,
            &ctx_at(t0),
            &NoFaults,
            &spoof,
            BailiwickPolicy::Accept,
            0,
            None,
        );
        res.unwrap();
        assert!(trace.addresses().contains(&attacker_addr));
        assert!(trace.steps.iter().any(|s| s.records.iter().any(|rr| rr.name == attacker)));
    }

    #[test]
    fn truncation_fails_transiently_with_trace() {
        let ns = namespace();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let trunc = |zone: &Name, _q: &Name, _c: &QueryContext, _a: u32| {
            (*zone == n("applimg.com")).then_some(AnswerTamper::Truncate)
        };
        let (trace, res) = RecursiveResolver::new().resolve_adversarial(
            &ns,
            &n("appldnld.apple.com"),
            RecordType::A,
            &ctx_at(t0),
            &NoFaults,
            &trunc,
            BailiwickPolicy::Enforce,
            0,
            None,
        );
        let err = res.unwrap_err();
        assert_eq!(err, ResolutionError::Truncated(n("appldnld.g.applimg.com")));
        assert!(err.is_transient());
        let last = trace.steps.last().unwrap();
        assert_eq!(last.zone, Some(n("applimg.com")));
        assert!(last.records.is_empty());
    }

    #[test]
    fn tampered_queries_bypass_the_round_memo() {
        let ns = namespace();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let q = n("appldnld.apple.com");
        let mut clean_memo = RoundMemo::new();
        let _ = RecursiveResolver::new().resolve_adversarial(
            &ns,
            &q,
            RecordType::A,
            &ctx_at(t0),
            &NoFaults,
            &NoMutations,
            BailiwickPolicy::Enforce,
            0,
            Some(&mut clean_memo),
        );
        assert_eq!(clean_memo.len(), 4, "all four chain hops memoize cleanly");
        let inflate = |zone: &Name, _q: &Name, _c: &QueryContext, _a: u32| {
            (*zone == n("akadns.net")).then_some(AnswerTamper::InflateTtl { factor: 1000 })
        };
        let mut memo = RoundMemo::new();
        let _ = RecursiveResolver::new().resolve_adversarial(
            &ns,
            &q,
            RecordType::A,
            &ctx_at(t0),
            &NoFaults,
            &inflate,
            BailiwickPolicy::Enforce,
            0,
            Some(&mut memo),
        );
        assert_eq!(memo.len(), 3, "the tampered hop must not enter the memo");
    }

    #[test]
    fn cname_query_does_not_chase() {
        let ns = namespace();
        let mut r = RecursiveResolver::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let (trace, res) =
            r.resolve(&ns, &n("appldnld.apple.com"), RecordType::Cname, &ctx_at(t0));
        res.unwrap();
        assert_eq!(trace.steps.len(), 1);
    }
}
