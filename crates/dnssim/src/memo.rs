//! Per-round memoization of scope-stable zone answers.
//!
//! Within one campaign round every query carries the same `now`, so a zone
//! answer that depends only on the client's *scope* — nothing
//! ([`PolicyScope::Global`]) or the client's city
//! ([`PolicyScope::City`]) — is identical for every probe sharing that
//! scope. A [`RoundMemo`] caches those answers for the duration of a round
//! so probes behind the same effective resolver scope stop repeating
//! identical delegation walks. Policies scoped
//! [`Client`](PolicyScope::Client) (selectors, GSLBs) are never memoized,
//! and the resolver consults its fault hook *before* the memo, so a query
//! the fault model perturbs bypasses memoization entirely: resolution
//! results are bit-identical with the memo on or off.
//!
//! The memo is shard-local in the parallel engine — each worker owns one —
//! so raw hit counts would vary with the thread count (a key's first
//! lookup *per shard* is a miss). [`RoundMemo::into_counts`] therefore
//! exposes per-key lookup counts instead; the engine merges them across
//! shards and derives the canonical, thread-count-independent counters
//! `lookups = Σ counts` and `hits = lookups − distinct keys` (what a
//! single shard would have observed).

use crate::zone::PolicyScope;
use mcdn_dnswire::{Name, RecordType, ResourceRecord};
use mcdn_geo::{Locode, SimTime};
use std::collections::HashMap;

/// The client-scope component of a memo key, derived from a
/// [`PolicyScope`] declaration plus the querying context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoScope {
    /// Same answer for every client.
    Global,
    /// Same answer for every client in this city.
    City(Locode),
}

impl MemoScope {
    /// The memo scope for an answer declared with `scope`, as seen from a
    /// client in `locode`; `None` for [`PolicyScope::Client`] (never
    /// memoizable).
    pub fn for_query(scope: PolicyScope, locode: Locode) -> Option<MemoScope> {
        match scope {
            PolicyScope::Global => Some(MemoScope::Global),
            PolicyScope::City => Some(MemoScope::City(locode)),
            PolicyScope::Client => None,
        }
    }
}

/// A memo entry's identity: the question, the scope it is stable over,
/// and the instant it was asked at. The time component makes the memo
/// airtight under retries — a backoff-shifted retry queries at a later
/// instant and gets its own key rather than replaying (or seeding)
/// another instant's answer, so memo contents never depend on the order
/// shards interleave probes and their retries.
pub type MemoKey = (Name, RecordType, MemoScope, SimTime);

struct Entry {
    records: Vec<ResourceRecord>,
    zone: Option<Name>,
    /// Queries served under this key, including the miss that stored it.
    lookups: u64,
}

/// One round's worth of memoized scope-stable answers (see module docs).
#[derive(Default)]
pub struct RoundMemo {
    entries: HashMap<MemoKey, Entry>,
}

impl std::fmt::Debug for RoundMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundMemo")
            .field("entries", &self.entries.len())
            .field("lookups", &self.lookups())
            .finish()
    }
}

impl RoundMemo {
    /// An empty memo, to be used for at most one campaign round.
    pub fn new() -> RoundMemo {
        RoundMemo::default()
    }

    /// Replays a stored answer, counting the lookup. Returns the records
    /// and answering-zone origin exactly as the authoritative query that
    /// stored them produced.
    pub(crate) fn replay(&mut self, key: &MemoKey) -> Option<(Vec<ResourceRecord>, Option<Name>)> {
        self.entries.get_mut(key).map(|e| {
            e.lookups += 1;
            (e.records.clone(), e.zone.clone())
        })
    }

    /// Stores a fresh authoritative answer (counted as this key's first
    /// lookup). Error answers (NXDOMAIN) are never stored.
    pub(crate) fn store(&mut self, key: MemoKey, records: Vec<ResourceRecord>, zone: Option<Name>) {
        self.entries.insert(key, Entry { records, zone, lookups: 1 });
    }

    /// Number of distinct memoized answers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total lookups of memoizable keys (hits plus the storing misses).
    pub fn lookups(&self) -> u64 {
        self.entries.values().map(|e| e.lookups).sum()
    }

    /// Lookups served from the memo (this shard's local view; see module
    /// docs for the canonical cross-shard accounting).
    pub fn hits(&self) -> u64 {
        self.lookups() - self.entries.len() as u64
    }

    /// Consumes the memo into its per-key lookup counts, the input to the
    /// engine's canonical cross-shard counter merge.
    pub fn into_counts(self) -> HashMap<MemoKey, u64> {
        self.entries.into_iter().map(|(k, e)| (k, e.lookups)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, scope: MemoScope) -> MemoKey {
        (Name::parse(name).unwrap(), RecordType::A, scope, SimTime(1_505_779_200))
    }

    #[test]
    fn replay_counts_lookups_and_returns_stored_answer() {
        let mut memo = RoundMemo::new();
        let k = key("mesu.apple.com", MemoScope::Global);
        assert!(memo.replay(&k).is_none());
        memo.store(k.clone(), Vec::new(), Some(Name::parse("apple.com").unwrap()));
        let (rrs, zone) = memo.replay(&k).unwrap();
        assert!(rrs.is_empty());
        assert_eq!(zone, Some(Name::parse("apple.com").unwrap()));
        assert_eq!(memo.lookups(), 2);
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn city_scopes_are_distinct_keys() {
        let mut memo = RoundMemo::new();
        let fra = MemoScope::City(Locode::parse("defra").unwrap());
        let nyc = MemoScope::City(Locode::parse("usnyc").unwrap());
        memo.store(key("geo.akadns.net", fra), Vec::new(), None);
        assert!(memo.replay(&key("geo.akadns.net", nyc)).is_none());
        assert!(memo.replay(&key("geo.akadns.net", fra)).is_some());
    }

    #[test]
    fn into_counts_reconstructs_canonical_counters() {
        // Two "shards" each memoize the same key: shard-local hits differ
        // from what one shard would have seen, but the merged counts give
        // the canonical figures.
        let k = key("x.apple.com", MemoScope::Global);
        let mut a = RoundMemo::new();
        a.store(k.clone(), Vec::new(), None);
        a.replay(&k);
        let mut b = RoundMemo::new();
        b.store(k.clone(), Vec::new(), None);
        let mut merged: HashMap<MemoKey, u64> = HashMap::new();
        for counts in [a.into_counts(), b.into_counts()] {
            for (k, c) in counts {
                *merged.entry(k).or_default() += c;
            }
        }
        let lookups: u64 = merged.values().sum();
        let hits = lookups - merged.len() as u64;
        assert_eq!((lookups, hits), (3, 2), "one true miss, two canonical hits");
    }
}
