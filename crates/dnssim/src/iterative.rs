//! Iterative resolution: walking NS delegations from the root.
//!
//! The AWS vantage points in the paper performed "full recursive DNS
//! resolution" — not stub queries against a shared cache but an iterative
//! walk from the root through each zone's NS delegation. This module
//! implements that walk over the simulated namespace: a [`RootHints`]-style
//! delegation tree is derived from the installed zones, and
//! [`IterativeResolver`] descends it referral by referral, recording every
//! zone visited. The result must agree with the shortcut resolver (a test
//! pins that), but the *path* is observable — which is how one can tell an
//! Akamai-operated zone answered a step of Apple's chain.

use crate::context::QueryContext;
use crate::resolver::MAX_CHAIN;
use crate::zone::{Namespace, ZoneAnswer};
use mcdn_dnswire::{Name, RData, RecordType};
use std::net::Ipv4Addr;

/// One step of the iterative walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationStep {
    /// The name being resolved at this step.
    pub qname: Name,
    /// The zone that was consulted.
    pub zone: Name,
    /// Whether the zone referred us onward (CNAME) or answered terminally.
    pub referred: bool,
}

/// Outcome of an iterative resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterativeOutcome {
    /// Zones consulted, in order.
    pub steps: Vec<IterationStep>,
    /// Terminal addresses.
    pub addrs: Vec<Ipv4Addr>,
}

/// Errors of the iterative walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IterativeError {
    /// No installed zone is authoritative for the name.
    NoAuthority(Name),
    /// The name does not exist.
    NxDomain(Name),
    /// Referral chain exceeded the hop budget.
    TooManyReferrals,
}

/// A resolver that walks delegations explicitly instead of asking the
/// namespace as an oracle.
#[derive(Debug, Default)]
pub struct IterativeResolver;

impl IterativeResolver {
    /// A fresh iterative resolver (stateless; full walks never cache, like
    /// the paper's VM measurements).
    pub fn new() -> IterativeResolver {
        IterativeResolver
    }

    /// Resolves `qname`/`qtype`, descending through each authoritative zone
    /// and following CNAME referrals across operators.
    pub fn resolve(
        &self,
        ns: &Namespace,
        qname: &Name,
        qtype: RecordType,
        ctx: &QueryContext,
    ) -> Result<IterativeOutcome, IterativeError> {
        let mut steps = Vec::new();
        let mut addrs = Vec::new();
        let mut current = qname.clone();
        for _ in 0..MAX_CHAIN {
            // Find the authoritative zone — the "descend the delegation
            // tree" part. We model the tree implicitly: the most specific
            // installed zone is what a root-down walk would reach, and the
            // walk records it.
            let zone = ns
                .authority_for(&current)
                .ok_or_else(|| IterativeError::NoAuthority(current.clone()))?;
            match zone.answer(&current, qtype, ctx) {
                ZoneAnswer::Records(mut rrs) => {
                    // The iterative walk is always strict about bailiwick:
                    // a zone can only answer for names it is authoritative
                    // over, exactly as a validating root-down walk behaves.
                    rrs.retain(|rr| rr.name.is_within(zone.origin()));
                    let mut next = None;
                    for rr in &rrs {
                        match &rr.rdata {
                            RData::A(a) if qtype == RecordType::A => addrs.push(*a),
                            RData::Cname(target) if qtype != RecordType::Cname => {
                                next = Some(target.clone());
                            }
                            _ => {}
                        }
                    }
                    let terminal = rrs.iter().any(|rr| rr.rtype() == qtype);
                    steps.push(IterationStep {
                        qname: current.clone(),
                        zone: zone.origin().clone(),
                        referred: next.is_some() && !terminal,
                    });
                    match next {
                        Some(target) if !terminal => current = target,
                        _ => return Ok(IterativeOutcome { steps, addrs }),
                    }
                }
                ZoneAnswer::NoData => {
                    steps.push(IterationStep {
                        qname: current.clone(),
                        zone: zone.origin().clone(),
                        referred: false,
                    });
                    return Ok(IterativeOutcome { steps, addrs });
                }
                ZoneAnswer::NxDomain => return Err(IterativeError::NxDomain(current)),
            }
        }
        Err(IterativeError::TooManyReferrals)
    }

    /// The distinct zone operators consulted during a walk — the paper's
    /// observation that Apple's chain crosses Apple- and Akamai-run zones.
    pub fn operators_visited(outcome: &IterativeOutcome) -> Vec<Name> {
        let mut zones: Vec<Name> = outcome.steps.iter().map(|s| s.zone.clone()).collect();
        zones.dedup();
        zones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::Zone;
    use mcdn_geo::{Continent, Coord, Locode, SimTime};

    fn ctx() -> QueryContext {
        QueryContext {
            client_ip: Ipv4Addr::new(84, 17, 0, 1),
            locode: Locode::parse("defra").unwrap(),
            coord: Coord::new(50.1, 8.7),
            continent: Continent::Europe,
            now: SimTime::from_ymd(2017, 9, 15),
        }
    }

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn three_operator_ns() -> Namespace {
        let mut ns = Namespace::new();
        let mut apple = Zone::new(n("apple.com"));
        apple.add_cname("appldnld.apple.com", "appldnld.apple.com.akadns.net", 21600);
        ns.add_zone(apple);
        let mut akadns = Zone::new(n("akadns.net"));
        akadns.add_cname("appldnld.apple.com.akadns.net", "appldnld.g.applimg.com", 120);
        ns.add_zone(akadns);
        let mut applimg = Zone::new(n("applimg.com"));
        applimg.add_a("appldnld.g.applimg.com", Ipv4Addr::new(17, 253, 5, 1), 15);
        ns.add_zone(applimg);
        ns
    }

    #[test]
    fn walk_crosses_three_operators() {
        let ns = three_operator_ns();
        let r = IterativeResolver::new();
        let out = r.resolve(&ns, &n("appldnld.apple.com"), RecordType::A, &ctx()).unwrap();
        assert_eq!(out.addrs, vec![Ipv4Addr::new(17, 253, 5, 1)]);
        let ops = IterativeResolver::operators_visited(&out);
        assert_eq!(ops, vec![n("apple.com"), n("akadns.net"), n("applimg.com")]);
        assert!(out.steps[0].referred && out.steps[1].referred && !out.steps[2].referred);
    }

    #[test]
    fn agrees_with_shortcut_resolver() {
        let ns = three_operator_ns();
        let iterative = IterativeResolver::new()
            .resolve(&ns, &n("appldnld.apple.com"), RecordType::A, &ctx())
            .unwrap();
        let mut recursive = crate::resolver::RecursiveResolver::new();
        let (trace, res) = recursive.resolve(&ns, &n("appldnld.apple.com"), RecordType::A, &ctx());
        res.unwrap();
        assert_eq!(iterative.addrs, trace.addresses());
    }

    #[test]
    fn nxdomain_and_no_authority() {
        let ns = three_operator_ns();
        let r = IterativeResolver::new();
        assert_eq!(
            r.resolve(&ns, &n("missing.apple.com"), RecordType::A, &ctx()).unwrap_err(),
            IterativeError::NxDomain(n("missing.apple.com"))
        );
        assert_eq!(
            r.resolve(&ns, &n("example.invalid"), RecordType::A, &ctx()).unwrap_err(),
            IterativeError::NoAuthority(n("example.invalid"))
        );
    }

    #[test]
    fn referral_loop_bounded() {
        let mut ns = Namespace::new();
        let mut z = Zone::new(n("loop.test"));
        z.add_cname("a.loop.test", "b.loop.test", 60);
        z.add_cname("b.loop.test", "a.loop.test", 60);
        ns.add_zone(z);
        let r = IterativeResolver::new();
        assert_eq!(
            r.resolve(&ns, &n("a.loop.test"), RecordType::A, &ctx()).unwrap_err(),
            IterativeError::TooManyReferrals
        );
    }

    #[test]
    fn nodata_walk_terminates_cleanly() {
        let ns = three_operator_ns();
        let r = IterativeResolver::new();
        let out = r.resolve(&ns, &n("appldnld.apple.com"), RecordType::Aaaa, &ctx()).unwrap();
        assert!(out.addrs.is_empty());
        // The walk still crossed the CNAME chain before finding no AAAA.
        assert!(out.steps.len() >= 2);
    }
}
