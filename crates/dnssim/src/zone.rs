//! Authoritative zones with static records and dynamic mapping policies.

use crate::context::QueryContext;
use mcdn_dnswire::{Name, RData, RecordType, ResourceRecord};
use std::collections::HashMap;
use std::sync::Arc;

/// A dynamic record source attached to a name in a zone.
///
/// This is the extension point through which the Meta-CDN is built: the CDN
/// selector at `appldnld.g.applimg.com`, the geo split at
/// `appldnld.apple.com.akadns.net`, and the GSLBs at
/// `{a|b}.gslb.applimg.com` are all `MappingPolicy` implementations
/// registered by the `metacdn` crate.
pub trait MappingPolicy: Send + Sync {
    /// Produces the records to serve for `qtype` under `ctx`. Returning an
    /// empty vector yields a NODATA answer (the observed behaviour of
    /// Apple's mapping for AAAA queries).
    fn respond(&self, qtype: RecordType, ctx: &QueryContext) -> Vec<ResourceRecord>;
}

impl<F> MappingPolicy for F
where
    F: Fn(RecordType, &QueryContext) -> Vec<ResourceRecord> + Send + Sync,
{
    fn respond(&self, qtype: RecordType, ctx: &QueryContext) -> Vec<ResourceRecord> {
        self(qtype, ctx)
    }
}

/// How much of the [`QueryContext`] a name's answer actually depends on —
/// the contract that makes per-round answer memoization sound.
///
/// Static records depend on nothing and are implicitly [`Global`]
/// (`PolicyScope::Global`). Dynamic policies default to the conservative
/// [`Client`](PolicyScope::Client) (never memoized); a policy registered
/// through [`Zone::set_policy_scoped`] *declares* a broader scope, promising
/// that two queries agreeing on the scope's inputs (and on `now`, which is
/// fixed within a round) receive identical records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyScope {
    /// The answer is the same for every client (static records, fixed
    /// CNAMEs, the China/India divert targets).
    Global,
    /// The answer depends only on the client's city (`ctx.locode`), not on
    /// its address — e.g. the Akamai geo split.
    City,
    /// The answer may depend on the full context, including `client_ip`
    /// (selectors, GSLBs, load-balancer rotations). Never memoized.
    Client,
}

/// Which *mutable campaign inputs* a name's answers can depend on — the
/// declaration that makes cross-round resolution reuse sound.
///
/// [`PolicyScope`] bounds how much of one query's context an answer reads;
/// `PolicyDeps` bounds which inputs *changing between rounds* can change
/// the answer for a fixed context. Static records depend on nothing.
/// Dynamic policies default to [`PolicyDeps::all`] (never reused across
/// rounds); a policy registered through [`Zone::set_policy_with_deps`]
/// declares a narrower set, promising that two queries agreeing on the
/// context and on every declared input receive identical records —
/// including TTLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolicyDeps(u8);

impl PolicyDeps {
    /// The answer reads the query time `ctx.now` (rotations, time-bucketed
    /// hashes, lag windows). Time advances every round, so a time-dependent
    /// answer is never reusable.
    pub const TIME: PolicyDeps = PolicyDeps(1 << 0);
    /// The answer reads live health/capacity/load signals (the shared
    /// `MetaCdnState`), versioned by its mutation counter.
    pub const STATE: PolicyDeps = PolicyDeps(1 << 1);
    /// The answer reads the commercial weight schedule, versioned by its
    /// breakpoint epoch.
    pub const SCHEDULE: PolicyDeps = PolicyDeps(1 << 2);

    /// No mutable input: the answer is a pure function of the context.
    pub const fn none() -> PolicyDeps {
        PolicyDeps(0)
    }

    /// Every mutable input — the conservative default for undeclared
    /// policies.
    pub const fn all() -> PolicyDeps {
        PolicyDeps(Self::TIME.0 | Self::STATE.0 | Self::SCHEDULE.0)
    }

    /// The union of two dependency sets.
    pub const fn union(self, other: PolicyDeps) -> PolicyDeps {
        PolicyDeps(self.0 | other.0)
    }

    /// Whether every dependency in `other` is also in `self`.
    pub const fn contains(self, other: PolicyDeps) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no mutable input is declared.
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Key for the static record map: owner name + record type wire value.
type RecordKey = (Name, u16);

/// One authoritative zone.
pub struct Zone {
    origin: Name,
    records: HashMap<RecordKey, Vec<ResourceRecord>>,
    names: HashMap<Name, ()>,
    policies: HashMap<Name, Arc<dyn MappingPolicy>>,
    scopes: HashMap<Name, PolicyScope>,
    deps: HashMap<Name, PolicyDeps>,
}

impl std::fmt::Debug for Zone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Zone")
            .field("origin", &self.origin)
            .field("static_records", &self.records.values().map(Vec::len).sum::<usize>())
            .field("policies", &self.policies.len())
            .finish()
    }
}

impl Zone {
    /// An empty zone rooted at `origin`.
    pub fn new(origin: Name) -> Zone {
        Zone {
            origin,
            records: HashMap::new(),
            names: HashMap::new(),
            policies: HashMap::new(),
            scopes: HashMap::new(),
            deps: HashMap::new(),
        }
    }

    /// The zone origin.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// Adds a static record. The owner must lie within the zone.
    pub fn add(&mut self, rr: ResourceRecord) {
        assert!(rr.name.is_within(&self.origin), "{} outside zone {}", rr.name, self.origin);
        self.names.insert(rr.name.clone(), ());
        self.records.entry((rr.name.clone(), rr.rtype().to_u16())).or_default().push(rr);
    }

    /// Convenience: adds a static CNAME.
    pub fn add_cname(&mut self, owner: &str, target: &str, ttl: u32) {
        let owner = Name::parse(owner).expect("valid owner name");
        let target = Name::parse(target).expect("valid target name");
        self.add(ResourceRecord::new(owner, ttl, RData::Cname(target)));
    }

    /// Convenience: adds a static A record.
    pub fn add_a(&mut self, owner: &str, addr: std::net::Ipv4Addr, ttl: u32) {
        let owner = Name::parse(owner).expect("valid owner name");
        self.add(ResourceRecord::new(owner, ttl, RData::A(addr)));
    }

    /// Attaches a dynamic policy at `owner` (replacing any previous one).
    /// The policy gets the conservative [`PolicyScope::Client`] scope.
    pub fn set_policy(&mut self, owner: Name, policy: Arc<dyn MappingPolicy>) {
        self.set_policy_scoped(owner, policy, PolicyScope::Client);
    }

    /// Attaches a dynamic policy at `owner` declaring how much of the
    /// query context its answers depend on (see [`PolicyScope`]). Declaring
    /// anything broader than `Client` is a promise the caller must keep:
    /// the per-round memo will replay one client's answer to another.
    pub fn set_policy_scoped(
        &mut self,
        owner: Name,
        policy: Arc<dyn MappingPolicy>,
        scope: PolicyScope,
    ) {
        self.set_policy_with_deps(owner, policy, scope, PolicyDeps::all());
    }

    /// Attaches a dynamic policy at `owner` declaring both its context
    /// scope (see [`PolicyScope`]) and which mutable campaign inputs its
    /// answers read (see [`PolicyDeps`]). Declaring anything narrower than
    /// [`PolicyDeps::all`] is a promise the caller must keep: the
    /// incremental engine will replay a prior round's answer after those
    /// inputs change.
    pub fn set_policy_with_deps(
        &mut self,
        owner: Name,
        policy: Arc<dyn MappingPolicy>,
        scope: PolicyScope,
        deps: PolicyDeps,
    ) {
        assert!(owner.is_within(&self.origin), "{} outside zone {}", owner, self.origin);
        self.names.insert(owner.clone(), ());
        self.scopes.insert(owner.clone(), scope);
        self.deps.insert(owner.clone(), deps);
        self.policies.insert(owner, policy);
    }

    /// The declared scope of answers at `qname`: the policy's declared
    /// scope if a policy is attached, otherwise [`PolicyScope::Global`]
    /// (static records and existence facts depend on no context).
    pub fn scope_of(&self, qname: &Name) -> PolicyScope {
        if self.policies.contains_key(qname) {
            *self.scopes.get(qname).unwrap_or(&PolicyScope::Client)
        } else {
            PolicyScope::Global
        }
    }

    /// The declared mutable-input dependencies of answers at `qname`: the
    /// policy's declared deps if a policy is attached, otherwise
    /// [`PolicyDeps::none`] (static records and existence facts never
    /// change within a campaign).
    pub fn deps_of(&self, qname: &Name) -> PolicyDeps {
        if self.policies.contains_key(qname) {
            *self.deps.get(qname).unwrap_or(&PolicyDeps::all())
        } else {
            PolicyDeps::none()
        }
    }

    /// Whether any record or policy exists at `name` (for NXDOMAIN vs NODATA).
    fn name_exists(&self, name: &Name) -> bool {
        self.names.contains_key(name)
    }

    /// Public form of the existence check, for snapshot compilers that
    /// replicate the zone's NXDOMAIN/NODATA split outside this module.
    pub fn contains_name(&self, name: &Name) -> bool {
        self.name_exists(name)
    }

    /// Iterates the static record sets as `(owner, wire qtype, records)`.
    /// Iteration order is unspecified (callers that need determinism sort
    /// by the key, as [`Zone::static_records`] does).
    pub fn record_sets(&self) -> impl Iterator<Item = (&Name, u16, &[ResourceRecord])> {
        self.records.iter().map(|((name, qtype), rrs)| (name, *qtype, rrs.as_slice()))
    }

    /// Iterates `(owner, policy)` for every dynamic mapping policy.
    pub fn policy_entries(&self) -> impl Iterator<Item = (&Name, &Arc<dyn MappingPolicy>)> {
        self.policies.iter()
    }

    /// All static records, in deterministic (name, type) order.
    pub fn static_records(&self) -> Vec<&ResourceRecord> {
        let mut keys: Vec<&RecordKey> = self.records.keys().collect();
        keys.sort();
        keys.iter().flat_map(|k| self.records[k].iter()).collect()
    }

    /// Names carrying dynamic policies, sorted.
    pub fn policy_names(&self) -> Vec<&Name> {
        let mut names: Vec<&Name> = self.policies.keys().collect();
        names.sort();
        names
    }

    /// Renders a zone-file-style listing: static records in master-file
    /// syntax, dynamic mapping policies as annotated comments (they have no
    /// static representation — which is rather the point of a Meta-CDN).
    pub fn to_zonefile(&self) -> String {
        let mut out = String::new();
        self.write_zonefile(&mut out).expect("fmt::Write to String cannot fail");
        out
    }

    /// Streams the zone-file listing into `out`. Each record renders
    /// directly through the writer, so callers with a reusable buffer pay
    /// no intermediate per-line allocations.
    pub fn write_zonefile<W: core::fmt::Write>(&self, out: &mut W) -> core::fmt::Result {
        writeln!(out, "$ORIGIN {}.", self.origin)?;
        for rr in self.static_records() {
            writeln!(out, "{rr}")?;
        }
        for name in self.policy_names() {
            writeln!(out, "; {name} -> [dynamic mapping policy]")?;
        }
        Ok(())
    }

    /// Answers a question this zone is authoritative for.
    pub fn answer(&self, qname: &Name, qtype: RecordType, ctx: &QueryContext) -> ZoneAnswer {
        // Dynamic policy takes precedence: it is the zone's mapping function.
        if let Some(policy) = self.policies.get(qname) {
            return ZoneAnswer::Records(policy.respond(qtype, ctx));
        }
        if let Some(rrs) = self.records.get(&(qname.clone(), qtype.to_u16())) {
            return ZoneAnswer::Records(rrs.clone());
        }
        // CNAME applies to every type except itself.
        if qtype != RecordType::Cname {
            if let Some(cnames) = self.records.get(&(qname.clone(), RecordType::Cname.to_u16())) {
                return ZoneAnswer::Records(cnames.clone());
            }
        }
        if self.name_exists(qname) {
            ZoneAnswer::NoData
        } else {
            ZoneAnswer::NxDomain
        }
    }
}

/// Outcome of asking a zone one question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// Records to return (possibly a CNAME redirect; possibly empty, which
    /// callers should treat as NODATA).
    Records(Vec<ResourceRecord>),
    /// The name exists but has no records of the asked type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
}

/// The collection of all authoritative zones in the simulated Internet.
#[derive(Debug, Default)]
pub struct Namespace {
    zones: Vec<Zone>,
}

impl Namespace {
    /// An empty namespace.
    pub fn new() -> Namespace {
        Namespace::default()
    }

    /// Installs a zone.
    pub fn add_zone(&mut self, zone: Zone) {
        self.zones.push(zone);
    }

    /// Mutable access to the zone with exactly this origin.
    pub fn zone_mut(&mut self, origin: &Name) -> Option<&mut Zone> {
        self.zones.iter_mut().find(|z| z.origin() == origin)
    }

    /// The most specific zone containing `name`, mirroring DNS delegation.
    pub fn authority_for(&self, name: &Name) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| name.is_within(z.origin()))
            .max_by_key(|z| z.origin().label_count())
    }

    /// Answers `qname`/`qtype`, also reporting which zone answered.
    pub fn query(
        &self,
        qname: &Name,
        qtype: RecordType,
        ctx: &QueryContext,
    ) -> (ZoneAnswer, Option<&Name>) {
        match self.authority_for(qname) {
            Some(zone) => (zone.answer(qname, qtype, ctx), Some(zone.origin())),
            None => (ZoneAnswer::NxDomain, None),
        }
    }

    /// The declared answer scope at `name`: the authoritative zone's
    /// [`Zone::scope_of`], or [`PolicyScope::Global`] when no zone is
    /// authoritative (NXDOMAIN is the same for everyone — though the memo
    /// never stores error answers anyway).
    pub fn scope_of(&self, name: &Name) -> PolicyScope {
        self.authority_for(name).map_or(PolicyScope::Global, |z| z.scope_of(name))
    }

    /// The declared mutable-input dependencies at `name`: the
    /// authoritative zone's [`Zone::deps_of`], or [`PolicyDeps::none`]
    /// when no zone is authoritative.
    pub fn deps_of(&self, name: &Name) -> PolicyDeps {
        self.authority_for(name).map_or(PolicyDeps::none(), |z| z.deps_of(name))
    }

    /// Number of installed zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// The installed zones, in installation order (the order
    /// [`Namespace::authority_for`] breaks label-count ties in).
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_geo::{Continent, Coord, Locode, SimTime};
    use std::net::Ipv4Addr;

    fn ctx() -> QueryContext {
        QueryContext {
            client_ip: Ipv4Addr::new(198, 51, 100, 7),
            locode: Locode::parse("defra").unwrap(),
            coord: Coord::new(50.1, 8.7),
            continent: Continent::Europe,
            now: SimTime::from_ymd(2017, 9, 15),
        }
    }

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn static_records_and_nodata_nxdomain() {
        let mut z = Zone::new(n("apple.com"));
        z.add_cname("appldnld.apple.com", "appldnld.apple.com.akadns.net", 21600);
        // A query hits the CNAME.
        match z.answer(&n("appldnld.apple.com"), RecordType::A, &ctx()) {
            ZoneAnswer::Records(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert_eq!(rrs[0].ttl, 21600);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The name exists, so an unsupported type at it that has a CNAME
        // still follows the CNAME; a name without records is NXDOMAIN.
        assert_eq!(z.answer(&n("nothere.apple.com"), RecordType::A, &ctx()), ZoneAnswer::NxDomain);
    }

    #[test]
    fn nodata_for_typed_miss_without_cname() {
        let mut z = Zone::new(n("apple.com"));
        z.add_a("mesu.apple.com", Ipv4Addr::new(17, 1, 1, 1), 300);
        assert_eq!(z.answer(&n("mesu.apple.com"), RecordType::Txt, &ctx()), ZoneAnswer::NoData);
    }

    #[test]
    fn cname_query_returns_cname_itself() {
        let mut z = Zone::new(n("apple.com"));
        z.add_cname("appldnld.apple.com", "x.akadns.net", 100);
        match z.answer(&n("appldnld.apple.com"), RecordType::Cname, &ctx()) {
            ZoneAnswer::Records(rrs) => assert_eq!(rrs[0].rtype(), RecordType::Cname),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn record_outside_zone_rejected() {
        let mut z = Zone::new(n("apple.com"));
        z.add_cname("example.org", "x.akadns.net", 100);
    }

    #[test]
    fn policy_overrides_statics_and_sees_context() {
        let mut z = Zone::new(n("applimg.com"));
        z.add_a("appldnld.g.applimg.com", Ipv4Addr::new(9, 9, 9, 9), 15);
        z.set_policy(
            n("appldnld.g.applimg.com"),
            Arc::new(|qtype: RecordType, ctx: &QueryContext| {
                if qtype != RecordType::A {
                    return Vec::new(); // IPv4-only mapping, like the paper observed
                }
                let target = match ctx.continent {
                    Continent::Europe => "a.gslb.applimg.com",
                    _ => "b.gslb.applimg.com",
                };
                vec![ResourceRecord::new(
                    n("appldnld.g.applimg.com"),
                    15,
                    RData::Cname(n(target)),
                )]
            }),
        );
        match z.answer(&n("appldnld.g.applimg.com"), RecordType::A, &ctx()) {
            ZoneAnswer::Records(rrs) => {
                assert_eq!(rrs[0].rdata, RData::Cname(n("a.gslb.applimg.com")));
            }
            other => panic!("unexpected {other:?}"),
        }
        // AAAA yields an empty (NODATA-like) answer through the policy.
        match z.answer(&n("appldnld.g.applimg.com"), RecordType::Aaaa, &ctx()) {
            ZoneAnswer::Records(rrs) => assert!(rrs.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn namespace_picks_most_specific_zone() {
        let mut ns = Namespace::new();
        ns.add_zone(Zone::new(n("apple.com")));
        let mut akadns = Zone::new(n("apple.com.akadns.net"));
        akadns.add_cname("appldnld.apple.com.akadns.net", "appldnld.g.applimg.com", 120);
        ns.add_zone(akadns);
        let (ans, origin) = ns.query(&n("appldnld.apple.com.akadns.net"), RecordType::A, &ctx());
        assert_eq!(origin, Some(&n("apple.com.akadns.net")));
        assert!(matches!(ans, ZoneAnswer::Records(_)));
        // Unknown TLD → NXDOMAIN with no zone.
        let (ans, origin) = ns.query(&n("nowhere.invalid"), RecordType::A, &ctx());
        assert_eq!(ans, ZoneAnswer::NxDomain);
        assert_eq!(origin, None);
    }
}

#[cfg(test)]
mod zonefile_tests {
    use super::*;
    use mcdn_dnswire::Name;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    #[test]
    fn zonefile_lists_statics_and_policies() {
        let mut z = Zone::new(Name::parse("applimg.com").unwrap());
        z.add_a("a.gslb.applimg.com", Ipv4Addr::new(17, 253, 1, 1), 20);
        z.add_cname("alias.applimg.com", "a.gslb.applimg.com", 60);
        z.set_policy(
            Name::parse("appldnld.g.applimg.com").unwrap(),
            Arc::new(|_: mcdn_dnswire::RecordType, _: &QueryContext| Vec::new()),
        );
        let text = z.to_zonefile();
        assert!(text.starts_with("$ORIGIN applimg.com.\n"));
        assert!(text.contains("a.gslb.applimg.com 20 IN A 17.253.1.1"));
        assert!(text.contains("alias.applimg.com 60 IN CNAME a.gslb.applimg.com"));
        assert!(text.contains("; appldnld.g.applimg.com -> [dynamic mapping policy]"));
    }

    #[test]
    fn write_zonefile_reuses_caller_buffer() {
        let mut z = Zone::new(Name::parse("applimg.com").unwrap());
        z.add_a("a.gslb.applimg.com", Ipv4Addr::new(17, 253, 1, 1), 20);
        let mut buf = String::with_capacity(256);
        z.write_zonefile(&mut buf).unwrap();
        assert_eq!(buf, z.to_zonefile());
        // A second render into the same buffer appends after the first —
        // the writer owns placement, the zone never allocates a String.
        let first_len = buf.len();
        z.write_zonefile(&mut buf).unwrap();
        assert_eq!(buf.len(), 2 * first_len);
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut z = Zone::new(Name::parse("x.test").unwrap());
            for i in 0..20u8 {
                z.add_a(&format!("h{i}.x.test"), Ipv4Addr::new(10, 0, 0, i), 60);
            }
            z.to_zonefile()
        };
        assert_eq!(build(), build());
    }
}
