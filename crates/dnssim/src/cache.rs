//! A TTL-honouring resolver cache.
//!
//! TTLs are the control knob of the Meta-CDN: the 15-second TTL on the
//! selector CNAME (`appldnld.g.applimg.com`) is what lets Apple reroute
//! clients between CDNs within seconds, while the 21600-second TTL on the
//! entry CNAME keeps the front of the chain pinned. The cache therefore
//! stores *absolute expiry instants* in simulated time and replays answers
//! until they lapse, exactly like a stub/recursive resolver would.

use mcdn_dnswire::{Name, RecordType, ResourceRecord};
use mcdn_geo::SimTime;
use std::collections::HashMap;

/// How long a negative (NODATA/NXDOMAIN) result is cached, seconds.
/// RFC 2308 derives this from the SOA; our zones use a flat value.
pub const NEGATIVE_TTL: u32 = 60;

#[derive(Debug, Clone)]
struct Entry {
    records: Vec<ResourceRecord>, // empty = negative entry
    expires: SimTime,
}

/// A per-resolver DNS cache.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    entries: HashMap<(Name, u16), Entry>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// Looks up `name`/`qtype` at time `now`. Returns the cached records
    /// (empty vector = cached negative) or `None` on miss/expiry.
    pub fn get(&mut self, name: &Name, qtype: RecordType, now: SimTime) -> Option<Vec<ResourceRecord>> {
        let key = (name.clone(), qtype.to_u16());
        match self.entries.get(&key) {
            Some(e) if now < e.expires => {
                self.hits += 1;
                // Surface the remaining TTL, as a real cache does.
                let remaining = e.expires.since(now).as_secs() as u32;
                Some(
                    e.records
                        .iter()
                        .map(|rr| {
                            let mut rr = rr.clone();
                            rr.ttl = rr.ttl.min(remaining);
                            rr
                        })
                        .collect(),
                )
            }
            _ => {
                self.misses += 1;
                self.entries.remove(&key);
                None
            }
        }
    }

    /// Stores an answer. The entry TTL is the minimum record TTL (the whole
    /// RRset expires together); empty answers are cached for [`NEGATIVE_TTL`].
    pub fn put(&mut self, name: Name, qtype: RecordType, records: Vec<ResourceRecord>, now: SimTime) {
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(NEGATIVE_TTL);
        let expires = now + mcdn_geo::Duration::secs(ttl as u64);
        self.entries.insert((name, qtype.to_u16()), Entry { records, expires });
    }

    /// Number of live plus expired entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops every entry (used when re-pointing a probe at a fresh resolver).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_dnswire::RData;
    use mcdn_geo::Duration;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn rr(name: &str, ttl: u32) -> ResourceRecord {
        ResourceRecord::new(n(name), ttl, RData::A(Ipv4Addr::new(17, 1, 1, 1)))
    }

    #[test]
    fn hit_until_expiry_then_miss() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("a.gslb.applimg.com"), RecordType::A, vec![rr("a.gslb.applimg.com", 15)], t0);
        assert!(c.get(&n("a.gslb.applimg.com"), RecordType::A, t0 + Duration::secs(14)).is_some());
        assert!(c.get(&n("a.gslb.applimg.com"), RecordType::A, t0 + Duration::secs(15)).is_none());
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn remaining_ttl_decreases() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("x.apple.com"), RecordType::A, vec![rr("x.apple.com", 100)], t0);
        let got = c.get(&n("x.apple.com"), RecordType::A, t0 + Duration::secs(40)).unwrap();
        assert_eq!(got[0].ttl, 60);
    }

    #[test]
    fn rrset_expires_on_minimum_ttl() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(
            n("multi.apple.com"),
            RecordType::A,
            vec![rr("multi.apple.com", 300), rr("multi.apple.com", 20)],
            t0,
        );
        assert!(c.get(&n("multi.apple.com"), RecordType::A, t0 + Duration::secs(21)).is_none());
    }

    #[test]
    fn negative_entries_cached_briefly() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("missing.apple.com"), RecordType::A, Vec::new(), t0);
        let hit = c.get(&n("missing.apple.com"), RecordType::A, t0 + Duration::secs(30));
        assert_eq!(hit, Some(Vec::new()));
        assert!(c
            .get(&n("missing.apple.com"), RecordType::A, t0 + Duration::secs(NEGATIVE_TTL as u64))
            .is_none());
    }

    #[test]
    fn types_are_independent() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("x.apple.com"), RecordType::A, vec![rr("x.apple.com", 100)], t0);
        assert!(c.get(&n("x.apple.com"), RecordType::Aaaa, t0).is_none());
    }

    #[test]
    fn clear_empties() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("x.apple.com"), RecordType::A, vec![rr("x.apple.com", 100)], t0);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
    }
}
