//! A TTL-honouring resolver cache.
//!
//! TTLs are the control knob of the Meta-CDN: the 15-second TTL on the
//! selector CNAME (`appldnld.g.applimg.com`) is what lets Apple reroute
//! clients between CDNs within seconds, while the 21600-second TTL on the
//! entry CNAME keeps the front of the chain pinned. The cache therefore
//! stores *absolute expiry instants* in simulated time and replays answers
//! until they lapse, exactly like a stub/recursive resolver would.

use mcdn_dnswire::{Name, RecordType, ResourceRecord};
use mcdn_geo::SimTime;
use std::collections::HashMap;

/// How long a negative (NODATA/NXDOMAIN) result is cached, seconds.
/// RFC 2308 derives this from the SOA; our zones use a flat value.
pub const NEGATIVE_TTL: u32 = 60;

/// The hard ceiling a cache puts on any record TTL (7 days, the classic
/// BIND `max-cache-ttl` default). Every legitimate TTL in the simulated
/// namespace is at most 21600 s, so the clamp only bites adversarially
/// inflated answers — it bounds how long a TTL-inflation attack can pin
/// a poisoned record.
pub const MAX_CACHE_TTL: u32 = 604_800;

/// Trust rank of a cached RRset, ordered RFC 2181 §5.4.1-style: data from
/// the answer section of an authoritative zone outranks glue/additional
/// data, and a lower rank must never overwrite a live higher rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CacheRank {
    /// Glue/additional-section data: lowest trust.
    Glue,
    /// An authoritative answer from the zone holding the name.
    Authoritative,
}

#[derive(Debug, Clone)]
struct Entry {
    records: Vec<ResourceRecord>, // empty = negative entry
    expires: SimTime,
    rank: CacheRank,
}

/// A per-resolver DNS cache.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    entries: HashMap<(Name, u16), Entry>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Cache {
        Cache::default()
    }

    /// Looks up `name`/`qtype` at time `now`. Returns the cached records
    /// (empty vector = cached negative) or `None` on miss/expiry.
    pub fn get(&mut self, name: &Name, qtype: RecordType, now: SimTime) -> Option<Vec<ResourceRecord>> {
        let key = (name.clone(), qtype.to_u16());
        match self.entries.get(&key) {
            Some(e) if now < e.expires => {
                self.hits += 1;
                // Surface the remaining TTL, as a real cache does.
                let remaining = e.expires.since(now).as_secs() as u32;
                Some(
                    e.records
                        .iter()
                        .map(|rr| {
                            let mut rr = rr.clone();
                            rr.ttl = rr.ttl.min(remaining);
                            rr
                        })
                        .collect(),
                )
            }
            _ => {
                self.misses += 1;
                self.entries.remove(&key);
                None
            }
        }
    }

    /// Stores an authoritative answer. The entry TTL is the minimum record
    /// TTL (the whole RRset expires together), clamped to [`MAX_CACHE_TTL`];
    /// empty answers are cached for [`NEGATIVE_TTL`].
    pub fn put(&mut self, name: Name, qtype: RecordType, records: Vec<ResourceRecord>, now: SimTime) {
        self.put_ranked(name, qtype, records, now, CacheRank::Authoritative);
    }

    /// [`Cache::put`] with an explicit [`CacheRank`]. Glue never displaces
    /// a live authoritative entry (the insert is silently refused); every
    /// other combination overwrites. Record TTLs are clamped to
    /// [`MAX_CACHE_TTL`] on the way in, so inflated TTLs cannot outlive
    /// the cap even before the first `get`.
    pub fn put_ranked(
        &mut self,
        name: Name,
        qtype: RecordType,
        mut records: Vec<ResourceRecord>,
        now: SimTime,
        rank: CacheRank,
    ) {
        let key = (name, qtype.to_u16());
        if rank == CacheRank::Glue {
            if let Some(e) = self.entries.get(&key) {
                if now < e.expires && e.rank == CacheRank::Authoritative {
                    return;
                }
            }
        }
        for rr in &mut records {
            rr.ttl = rr.ttl.min(MAX_CACHE_TTL);
        }
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(NEGATIVE_TTL);
        let expires = now + mcdn_geo::Duration::secs(ttl as u64);
        self.entries.insert(key, Entry { records, expires, rank });
    }

    /// Iterates every held RRset as `(owner, qtype, records)` — expired
    /// entries included, since they linger until the next `get`. Audit
    /// hook for the poisoning sweep: invariant checks scan the whole cache
    /// for out-of-bailiwick owners or over-cap TTLs.
    pub fn iter_records(&self) -> impl Iterator<Item = (&Name, u16, &[ResourceRecord])> {
        self.entries.iter().map(|((name, qtype), e)| (name, *qtype, e.records.as_slice()))
    }

    /// Number of live plus expired entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops every entry (used when re-pointing a probe at a fresh resolver).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdn_dnswire::RData;
    use mcdn_geo::Duration;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn rr(name: &str, ttl: u32) -> ResourceRecord {
        ResourceRecord::new(n(name), ttl, RData::A(Ipv4Addr::new(17, 1, 1, 1)))
    }

    #[test]
    fn hit_until_expiry_then_miss() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("a.gslb.applimg.com"), RecordType::A, vec![rr("a.gslb.applimg.com", 15)], t0);
        assert!(c.get(&n("a.gslb.applimg.com"), RecordType::A, t0 + Duration::secs(14)).is_some());
        assert!(c.get(&n("a.gslb.applimg.com"), RecordType::A, t0 + Duration::secs(15)).is_none());
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn remaining_ttl_decreases() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("x.apple.com"), RecordType::A, vec![rr("x.apple.com", 100)], t0);
        let got = c.get(&n("x.apple.com"), RecordType::A, t0 + Duration::secs(40)).unwrap();
        assert_eq!(got[0].ttl, 60);
    }

    #[test]
    fn rrset_expires_on_minimum_ttl() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(
            n("multi.apple.com"),
            RecordType::A,
            vec![rr("multi.apple.com", 300), rr("multi.apple.com", 20)],
            t0,
        );
        assert!(c.get(&n("multi.apple.com"), RecordType::A, t0 + Duration::secs(21)).is_none());
    }

    #[test]
    fn negative_entries_cached_briefly() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("missing.apple.com"), RecordType::A, Vec::new(), t0);
        let hit = c.get(&n("missing.apple.com"), RecordType::A, t0 + Duration::secs(30));
        assert_eq!(hit, Some(Vec::new()));
        assert!(c
            .get(&n("missing.apple.com"), RecordType::A, t0 + Duration::secs(NEGATIVE_TTL as u64))
            .is_none());
    }

    #[test]
    fn types_are_independent() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("x.apple.com"), RecordType::A, vec![rr("x.apple.com", 100)], t0);
        assert!(c.get(&n("x.apple.com"), RecordType::Aaaa, t0).is_none());
    }

    #[test]
    fn ttl_cap_bounds_inflated_records() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("x.apple.com"), RecordType::A, vec![rr("x.apple.com", u32::MAX)], t0);
        let got = c.get(&n("x.apple.com"), RecordType::A, t0).unwrap();
        assert_eq!(got[0].ttl, MAX_CACHE_TTL);
        // And the entry itself expires at the cap, not at u32::MAX.
        assert!(c
            .get(&n("x.apple.com"), RecordType::A, t0 + Duration::secs(MAX_CACHE_TTL as u64))
            .is_none());
    }

    #[test]
    fn glue_never_displaces_live_authoritative_data() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        let name = n("ns1.apple.com");
        c.put(name.clone(), RecordType::A, vec![rr("ns1.apple.com", 300)], t0);
        // A glue record claiming a different address must be refused while
        // the authoritative entry is live...
        let glue = ResourceRecord::new(name.clone(), 300, RData::A(Ipv4Addr::new(198, 18, 0, 1)));
        c.put_ranked(name.clone(), RecordType::A, vec![glue.clone()], t0, CacheRank::Glue);
        let got = c.get(&name, RecordType::A, t0 + Duration::secs(1)).unwrap();
        assert_eq!(got[0].rdata, RData::A(Ipv4Addr::new(17, 1, 1, 1)));
        // ...but may fill the slot once it has expired.
        c.put_ranked(
            name.clone(),
            RecordType::A,
            vec![glue],
            t0 + Duration::secs(301),
            CacheRank::Glue,
        );
        let got = c.get(&name, RecordType::A, t0 + Duration::secs(302)).unwrap();
        assert_eq!(got[0].rdata, RData::A(Ipv4Addr::new(198, 18, 0, 1)));
        // Authoritative data always overwrites glue.
        c.put(name.clone(), RecordType::A, vec![rr("ns1.apple.com", 300)], t0 + Duration::secs(303));
        let got = c.get(&name, RecordType::A, t0 + Duration::secs(304)).unwrap();
        assert_eq!(got[0].rdata, RData::A(Ipv4Addr::new(17, 1, 1, 1)));
    }

    #[test]
    fn iter_records_exposes_every_owner() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("a.apple.com"), RecordType::A, vec![rr("a.apple.com", 60)], t0);
        c.put(n("b.apple.com"), RecordType::A, vec![rr("b.apple.com", 60)], t0);
        let mut owners: Vec<String> =
            c.iter_records().map(|(name, _, _)| name.to_string()).collect();
        owners.sort();
        assert_eq!(owners, vec!["a.apple.com", "b.apple.com"]);
    }

    #[test]
    fn clear_empties() {
        let mut c = Cache::new();
        let t0 = SimTime::from_ymd(2017, 9, 15);
        c.put(n("x.apple.com"), RecordType::A, vec![rr("x.apple.com", 100)], t0);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
    }
}
