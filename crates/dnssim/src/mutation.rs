//! Byzantine answer mutations and bailiwick enforcement policy.
//!
//! Where [`crate::faults`] models *absent* answers (SERVFAIL, timeouts),
//! this module models *wrong* ones: the record-level tampering a resolver
//! sees from spoofed, misconfigured, or hostile authoritative servers.
//! [`MutationModel`] (and its interned twin [`InternedMutationModel`]) is
//! the resolver's injection point, consulted once per authoritative query
//! right after the fault hook; the returned [`AnswerTamper`] is applied to
//! the authoritative answer *before* bailiwick filtering, caching, and
//! memoization, so every layer downstream sees exactly what a poisoned
//! wire answer would have carried.
//!
//! [`BailiwickPolicy`] selects the resolver's defense posture:
//! [`BailiwickPolicy::Enforce`] (the default everywhere) drops records
//! whose owner lies outside the answering zone's bailiwick — which is a
//! strict no-op for every well-formed answer, a property the equivalence
//! tests pin — while [`BailiwickPolicy::Accept`] models a naive resolver
//! that ingests whatever arrives, exposing the mis-mapping delta the
//! poisoning sweep measures.
//!
//! Like the fault hooks, mutation models must be pure functions of their
//! inputs so adversarial campaigns stay bit-reproducible and resumable;
//! `mcdn-faults::AnswerMutation` supplies the deterministic draws and the
//! campaign layer adapts them to these traits.

use crate::context::QueryContext;
use crate::interned::{IRData, IRecord};
use mcdn_dnswire::{Name, RData, ResourceRecord};
use mcdn_intern::NameId;
use std::net::Ipv4Addr;

/// How the resolver treats records outside the answering zone's bailiwick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BailiwickPolicy {
    /// Drop out-of-bailiwick records before they reach the trace, cache,
    /// or memo (hardened resolver; the default).
    Enforce,
    /// Ingest answers as-is (naive resolver; poisoning lands).
    Accept,
}

/// One concrete tampering applied to an authoritative answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerTamper {
    /// Append an A record (owned by `owner`, usually an attacker name out
    /// of every zone's bailiwick) steering traffic at `addr`.
    SpoofA {
        /// Owner name of the injected record.
        owner: Name,
        /// The attacker-controlled address.
        addr: Ipv4Addr,
        /// TTL of the injected record.
        ttl: u32,
    },
    /// Append an out-of-bailiwick NS record delegating `owner` to an
    /// attacker name server.
    InjectNs {
        /// Owner name of the injected delegation.
        owner: Name,
        /// The attacker name server.
        target: Name,
        /// TTL of the injected record.
        ttl: u32,
    },
    /// The answer is truncated/garbled beyond use: the resolver records
    /// the step and fails with a transient malformed-answer error instead
    /// of ingesting a partial RRset.
    Truncate,
    /// Multiply every record TTL by `factor` (saturating), trying to pin
    /// the answer in caches far beyond its legitimate lifetime.
    InflateTtl {
        /// The multiplier (0 is treated as 1).
        factor: u32,
    },
}

/// The id-keyed form of [`AnswerTamper`], `Copy` like everything on the
/// interned hot path. Owner/target names must be interned in the
/// campaign's compiled table (see
/// [`CompiledNamespace::compile_with_extra`](crate::CompiledNamespace::compile_with_extra)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ITamper {
    /// Append an A record owned by `owner` pointing at `addr`.
    SpoofA {
        /// Owner id of the injected record.
        owner: NameId,
        /// The attacker-controlled address.
        addr: Ipv4Addr,
        /// TTL of the injected record.
        ttl: u32,
    },
    /// Append an NS record delegating `owner` to `target`.
    InjectNs {
        /// Owner id of the injected delegation.
        owner: NameId,
        /// The attacker name server id.
        target: NameId,
        /// TTL of the injected record.
        ttl: u32,
    },
    /// Fail the step with a transient malformed-answer error.
    Truncate,
    /// Multiply every record TTL by `factor` (saturating; 0 acts as 1).
    InflateTtl {
        /// The multiplier.
        factor: u32,
    },
}

/// Decides whether one authoritative answer is tampered with.
///
/// Implementations must be pure functions of their inputs (plus frozen
/// configuration) so campaigns stay reproducible.
pub trait MutationModel {
    /// The tampering, if any, for the answer `zone` gives to `qname`
    /// during retry `attempt` in context `ctx`.
    fn answer_mutation(
        &self,
        zone: &Name,
        qname: &Name,
        ctx: &QueryContext,
        attempt: u32,
    ) -> Option<AnswerTamper>;
}

/// The trivial mutation model: never tampers. All fault-era entry points
/// use this, so mutation-unaware callers stay bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMutations;

impl MutationModel for NoMutations {
    fn answer_mutation(
        &self,
        _zone: &Name,
        _qname: &Name,
        _ctx: &QueryContext,
        _attempt: u32,
    ) -> Option<AnswerTamper> {
        None
    }
}

/// Any pure closure with the right shape is a mutation model, mirroring
/// the [`FaultModel`](crate::FaultModel) closure impl.
impl<F> MutationModel for F
where
    F: Fn(&Name, &Name, &QueryContext, u32) -> Option<AnswerTamper>,
{
    fn answer_mutation(
        &self,
        zone: &Name,
        qname: &Name,
        ctx: &QueryContext,
        attempt: u32,
    ) -> Option<AnswerTamper> {
        self(zone, qname, ctx, attempt)
    }
}

/// The id-keyed mutation hook: like [`InternedFaultModel`](crate::InternedFaultModel),
/// the resolver hands over the precomputed display-FNV digests of the zone
/// origin and query name so models reproduce the string path's keys
/// without formatting anything.
pub trait InternedMutationModel {
    /// Consulted once per authoritative query, after the fault hook.
    fn answer_mutation(
        &self,
        zone: NameId,
        zone_fnv: u64,
        qname: NameId,
        qname_fnv: u64,
        ctx: &QueryContext,
        attempt: u32,
    ) -> Option<ITamper>;
}

/// The quiet interned mutation model: never tampers.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInternedMutations;

impl InternedMutationModel for NoInternedMutations {
    fn answer_mutation(
        &self,
        _zone: NameId,
        _zone_fnv: u64,
        _qname: NameId,
        _qname_fnv: u64,
        _ctx: &QueryContext,
        _attempt: u32,
    ) -> Option<ITamper> {
        None
    }
}

impl<F> InternedMutationModel for F
where
    F: Fn(NameId, u64, NameId, u64, &QueryContext, u32) -> Option<ITamper> + Send + Sync,
{
    fn answer_mutation(
        &self,
        zone: NameId,
        zone_fnv: u64,
        qname: NameId,
        qname_fnv: u64,
        ctx: &QueryContext,
        attempt: u32,
    ) -> Option<ITamper> {
        self(zone, zone_fnv, qname, qname_fnv, ctx, attempt)
    }
}

/// The canonical attacker-owned record name. Under `.invalid` (RFC 2606),
/// so it lies outside the bailiwick of every zone the simulator can
/// install — an Enforce-mode resolver always drops records it owns.
pub fn attacker_owner() -> Name {
    Name::parse("phish.attacker.invalid").expect("static attacker name parses")
}

/// The canonical attacker name-server name (see [`attacker_owner`]).
pub fn attacker_ns() -> Name {
    Name::parse("ns.attacker.invalid").expect("static attacker name parses")
}

/// Applies a record-editing tamper to a string-keyed answer.
/// [`AnswerTamper::Truncate`] is not record-editing — the resolver handles
/// it before the query — so it is a no-op here.
pub fn apply_tamper(records: &mut Vec<ResourceRecord>, tamper: &AnswerTamper) {
    match tamper {
        AnswerTamper::SpoofA { owner, addr, ttl } => {
            records.push(ResourceRecord::new(owner.clone(), *ttl, RData::A(*addr)));
        }
        AnswerTamper::InjectNs { owner, target, ttl } => {
            records.push(ResourceRecord::new(owner.clone(), *ttl, RData::Ns(target.clone())));
        }
        AnswerTamper::Truncate => {}
        AnswerTamper::InflateTtl { factor } => {
            let f = (*factor).max(1);
            for rr in records {
                rr.ttl = rr.ttl.saturating_mul(f);
            }
        }
    }
}

/// The interned [`apply_tamper`], editing an answer buffer in place with
/// the identical record shapes.
pub fn apply_itamper(records: &mut Vec<IRecord>, tamper: &ITamper) {
    match tamper {
        ITamper::SpoofA { owner, addr, ttl } => {
            records.push(IRecord { name: *owner, ttl: *ttl, rdata: IRData::A(*addr) });
        }
        ITamper::InjectNs { owner, target, ttl } => {
            records.push(IRecord { name: *owner, ttl: *ttl, rdata: IRData::Ns(*target) });
        }
        ITamper::Truncate => {}
        ITamper::InflateTtl { factor } => {
            let f = (*factor).max(1);
            for rr in records {
                rr.ttl = rr.ttl.saturating_mul(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacker_names_are_outside_every_simulated_bailiwick() {
        for origin in ["apple.com", "akadns.net", "applimg.com", "edgesuite.net", "lvl3.net"] {
            let z = Name::parse(origin).unwrap();
            assert!(!attacker_owner().is_within(&z), "{origin}");
            assert!(!attacker_ns().is_within(&z), "{origin}");
        }
    }

    #[test]
    fn tamper_application_edits_records_in_place() {
        let owner = attacker_owner();
        let legit = ResourceRecord::new(
            Name::parse("a.gslb.applimg.com").unwrap(),
            20,
            RData::A(Ipv4Addr::new(17, 253, 1, 1)),
        );
        let mut rrs = vec![legit.clone()];
        apply_tamper(
            &mut rrs,
            &AnswerTamper::SpoofA { owner: owner.clone(), addr: Ipv4Addr::new(198, 18, 0, 9), ttl: 600 },
        );
        assert_eq!(rrs.len(), 2);
        assert_eq!(rrs[1].name, owner);
        let mut rrs = vec![legit.clone()];
        apply_tamper(&mut rrs, &AnswerTamper::InflateTtl { factor: 10_000 });
        assert_eq!(rrs[0].ttl, 200_000);
        let mut rrs = vec![legit.clone()];
        apply_tamper(&mut rrs, &AnswerTamper::InflateTtl { factor: 0 });
        assert_eq!(rrs[0].ttl, 20, "factor 0 acts as 1");
        let mut rrs = vec![legit];
        apply_tamper(&mut rrs, &AnswerTamper::Truncate);
        assert_eq!(rrs.len(), 1, "Truncate edits nothing at the record level");
    }
}
