//! Micro-benchmarks of the hot substrate operations: DNS wire codec,
//! recursive resolution, longest-prefix match, valley-free routing,
//! NetFlow codec + sampler, and cache-site serving.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcdn_bench::micro_world;
use mcdn_dnssim::{QueryContext, RecursiveResolver};
use mcdn_dnswire::{Message, Name, RData, RecordType, ResourceRecord};
use mcdn_geo::{Continent, Coord, Locode, SimTime};
use mcdn_isp::{ExportPacket, FlowRecord, Sampler};
use mcdn_netsim::{Ipv4Net, PrefixTrie, Router};
use mcdn_scenario::{loads, params};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn sample_message() -> Message {
    let n = |s: &str| Name::parse(s).unwrap();
    let mut m = Message::query(0x4242, n("appldnld.apple.com"), RecordType::A);
    m.answers = vec![
        ResourceRecord::new(n("appldnld.apple.com"), 21600, RData::Cname(n("appldnld.apple.com.akadns.net"))),
        ResourceRecord::new(n("appldnld.apple.com.akadns.net"), 120, RData::Cname(n("appldnld.g.applimg.com"))),
        ResourceRecord::new(n("appldnld.g.applimg.com"), 15, RData::Cname(n("a.gslb.applimg.com"))),
        ResourceRecord::new(n("a.gslb.applimg.com"), 20, RData::A(Ipv4Addr::new(17, 253, 37, 16))),
        ResourceRecord::new(n("a.gslb.applimg.com"), 20, RData::A(Ipv4Addr::new(17, 253, 37, 17))),
    ];
    m
}

fn bench_dns_codec(c: &mut Criterion) {
    let msg = sample_message();
    let bytes = msg.encode().unwrap();
    let mut g = c.benchmark_group("dnswire");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_mapping_answer", |b| b.iter(|| black_box(msg.encode().unwrap())));
    g.bench_function("decode_mapping_answer", |b| {
        b.iter(|| black_box(Message::decode(&bytes).unwrap()))
    });
    g.finish();
}

fn bench_recursive_resolution(c: &mut Criterion) {
    let (_, world) = micro_world();
    let now = SimTime::from_ymd_hms(2017, 9, 19, 18, 0, 0);
    loads::update_loads(&world, now);
    let entry = metacdn::names::entry();
    let ctx = QueryContext {
        client_ip: Ipv4Addr::new(84, 17, 3, 9),
        locode: Locode::parse("defra").unwrap(),
        coord: Coord::new(50.1, 8.7),
        continent: Continent::Europe,
        now,
    };
    let mut g = c.benchmark_group("resolver");
    g.bench_function("full_chain_cold_cache", |b| {
        b.iter(|| {
            let mut r = RecursiveResolver::new();
            black_box(r.resolve(&world.ns, &entry, RecordType::A, &ctx))
        })
    });
    let mut warm = RecursiveResolver::new();
    let _ = warm.resolve(&world.ns, &entry, RecordType::A, &ctx);
    g.bench_function("full_chain_warm_cache", |b| {
        b.iter(|| black_box(warm.resolve(&world.ns, &entry, RecordType::A, &ctx)))
    });
    g.finish();
}

fn bench_lpm(c: &mut Criterion) {
    let mut trie = PrefixTrie::new();
    // A RIB of ~10k synthetic prefixes.
    for i in 0..10_000u32 {
        let addr = Ipv4Addr::from(i.wrapping_mul(2_654_435_761));
        trie.insert(Ipv4Net::new(addr, 8 + (i % 17) as u8), i);
    }
    let probes: Vec<Ipv4Addr> =
        (0..1000u32).map(|i| Ipv4Addr::from(i.wrapping_mul(40_503))).collect();
    let mut g = c.benchmark_group("bgp_rib");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("lpm_1000_lookups_10k_routes", |b| {
        b.iter(|| {
            for ip in &probes {
                black_box(trie.lookup(*ip));
            }
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let (_, world) = micro_world();
    c.bench_function("valley_free_path_uncached", |b| {
        b.iter(|| {
            let mut router = Router::new();
            black_box(router.path(&world.topo, params::LL_SURGE_D_AS, params::EYEBALL_AS))
        })
    });
}

fn bench_netflow(c: &mut Criterion) {
    let rec = FlowRecord {
        src: Ipv4Addr::new(68, 232, 34, 1),
        dst: Ipv4Addr::new(84, 17, 5, 9),
        input_if: 7,
        packets: 120,
        bytes: 168_000,
        src_as: 22822,
        dst_as: 3320,
    };
    let pkt = ExportPacket {
        unix_secs: 1_505_840_400,
        flow_sequence: 0,
        sampling_interval: 1000,
        records: vec![rec; 30],
    };
    let bytes = pkt.encode().unwrap();
    let mut g = c.benchmark_group("netflow");
    g.throughput(Throughput::Elements(30));
    g.bench_function("encode_30_records", |b| b.iter(|| black_box(pkt.encode().unwrap())));
    g.bench_function("decode_30_records", |b| {
        b.iter(|| black_box(ExportPacket::decode(&bytes).unwrap()))
    });
    let sampler = Sampler::new(1000);
    g.bench_function("sample_flow", |b| {
        b.iter(|| {
            black_box(sampler.sample(
                3_000_000,
                (Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), SimTime(12345)),
            ))
        })
    });
    g.finish();
}

fn bench_site_serving(c: &mut Criterion) {
    let (_, mut world) = micro_world();
    c.bench_function("edge_site_serve_hit", |b| {
        let site = &mut world.apple.sites_mut()[0];
        let req = mcdn_cdn::HttpRequest {
            host: "appldnld.apple.com".into(),
            path: "/ipsw".into(),
            client: Ipv4Addr::new(84, 17, 0, 1),
        };
        let _ = site.serve(&req, "obj", 1); // warm
        b.iter(|| black_box(site.serve(&req, "obj", 1)))
    });
}

criterion_group!(
    micro,
    bench_dns_codec,
    bench_recursive_resolution,
    bench_lpm,
    bench_routing,
    bench_netflow,
    bench_site_serving,
);
criterion_main!(micro);
