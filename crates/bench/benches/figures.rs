//! One Criterion bench per paper table and figure: each measures the cost
//! of regenerating the artifact from raw simulated measurements at micro
//! scale (and, as a side effect, proves the regeneration code runs).

use criterion::{criterion_group, criterion_main, Criterion};
use mcdn_analysis::{fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, table1};
use mcdn_bench::{micro_cfg, micro_world};
use mcdn_scenario::{params, run_global_dns, run_isp_dns, run_isp_traffic, World};
use std::hint::black_box;

fn bench_fig1_timeline(c: &mut Criterion) {
    c.bench_function("fig1_timeline", |b| b.iter(|| black_box(fig1::fig1())));
}

fn bench_fig2_mapping_graph(c: &mut Criterion) {
    let (_, world) = micro_world();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("fig2_mapping_graph_crawl", |b| {
        b.iter(|| black_box(fig2::fig2(&world)))
    });
    g.finish();
}

fn bench_fig3_site_discovery(c: &mut Criterion) {
    let (_, world) = micro_world();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("fig3_site_discovery_scan", |b| {
        b.iter(|| {
            let t = fig3::fig3(&world);
            assert_eq!(t.rows.len(), 34);
            black_box(t)
        })
    });
    g.finish();
}

fn bench_table1_naming(c: &mut Criterion) {
    let (_, world) = micro_world();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("table1_naming_scheme", |b| {
        b.iter(|| black_box(table1::table1(&world)))
    });
    g.finish();
}

fn bench_fig4_unique_ips_global(c: &mut Criterion) {
    let (cfg, world) = micro_world();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("fig4_global_campaign_and_summary", |b| {
        b.iter(|| {
            let result = run_global_dns(&world, &cfg);
            black_box(fig4::fig4_summary(&result, params::release()))
        })
    });
    g.finish();
}

fn bench_fig5_unique_ips_isp(c: &mut Criterion) {
    let (cfg, world) = micro_world();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("fig5_isp_campaign_and_series", |b| {
        b.iter(|| {
            let result = run_isp_dns(&world, &cfg);
            black_box((fig5::fig5_series(&result), fig5::fig5_akamai_rise(&result)))
        })
    });
    g.finish();
}

fn bench_fig6_classification(c: &mut Criterion) {
    let (_, world) = micro_world();
    c.bench_function("fig6_classification", |b| b.iter(|| black_box(fig6::fig6(&world))));
}

fn bench_fig7_offload_traffic(c: &mut Criterion) {
    let cfg = micro_cfg();
    let world = World::build(&cfg);
    let dns = run_isp_dns(&world, &cfg);
    let traffic = run_isp_traffic(&world, &cfg);
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("fig7_scaling_and_summary", |b| {
        b.iter(|| black_box(fig7::fig7_summary(&traffic, &dns.ip_classes, params::release())))
    });
    g.bench_function("fig7_telemetry_generation", |b| {
        b.iter(|| black_box(run_isp_traffic(&world, &cfg)))
    });
    g.finish();
}

fn bench_fig8_overflow(c: &mut Criterion) {
    let cfg = micro_cfg();
    let world = World::build(&cfg);
    let dns = run_isp_dns(&world, &cfg);
    let traffic = run_isp_traffic(&world, &cfg);
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("fig8_overflow_series", |b| {
        b.iter(|| black_box(fig8::fig8_series(&traffic, &dns.ip_classes, &world)))
    });
    g.bench_function("fig8_d_link_saturation", |b| {
        b.iter(|| black_box(fig8::fig8_d_link_saturation(&traffic, &world, cfg.traffic_tick)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1_timeline,
    bench_fig2_mapping_graph,
    bench_fig3_site_discovery,
    bench_table1_naming,
    bench_fig4_unique_ips_global,
    bench_fig5_unique_ips_isp,
    bench_fig6_classification,
    bench_fig7_offload_traffic,
    bench_fig8_overflow,
);
criterion_main!(figures);
