//! Benchmarks of the deterministic parallel campaign engine: the same
//! campaigns serial (one worker) and parallel (the machine's worker
//! count), so `cargo bench --bench engine` reports what the shard-and-
//! merge architecture buys on this host. Output is bit-identical across
//! thread counts (the determinism suite asserts it), so the comparison is
//! pure engine overhead/speedup — never a different workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcdn_bench::micro_world;
use mcdn_scenario::{run_global_dns_threads, run_isp_dns_threads, run_isp_traffic_threads};

fn bench_global_campaign(c: &mut Criterion) {
    let (cfg, world) = micro_world();
    let serial = run_global_dns_threads(&world, &cfg, 1);
    let mut g = c.benchmark_group("engine/global_dns");
    g.sample_size(10);
    g.throughput(Throughput::Elements(serial.resolutions));
    g.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(run_global_dns_threads(&world, &cfg, 1)))
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            std::hint::black_box(run_global_dns_threads(&world, &cfg, mcdn_exec::thread_count()))
        })
    });
    g.finish();
}

fn bench_isp_campaign(c: &mut Criterion) {
    let (cfg, world) = micro_world();
    let serial = run_isp_dns_threads(&world, &cfg, 1);
    let mut g = c.benchmark_group("engine/isp_dns");
    g.sample_size(10);
    g.throughput(Throughput::Elements(serial.resolutions));
    g.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(run_isp_dns_threads(&world, &cfg, 1)))
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            std::hint::black_box(run_isp_dns_threads(&world, &cfg, mcdn_exec::thread_count()))
        })
    });
    g.finish();
}

fn bench_traffic(c: &mut Criterion) {
    let (cfg, world) = micro_world();
    let serial = run_isp_traffic_threads(&world, &cfg, 1);
    let mut g = c.benchmark_group("engine/isp_traffic");
    g.sample_size(10);
    g.throughput(Throughput::Elements(serial.flows.len() as u64));
    g.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(run_isp_traffic_threads(&world, &cfg, 1)))
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            std::hint::black_box(run_isp_traffic_threads(&world, &cfg, mcdn_exec::thread_count()))
        })
    });
    g.finish();
}

criterion_group!(engine, bench_global_campaign, bench_isp_campaign, bench_traffic);
criterion_main!(engine);
