//! Ablation benches for the design choices DESIGN.md calls out. Each bench
//! measures (and asserts) the *behavioural* consequence of toggling one
//! design element, so regressions in the mechanisms show up as changed
//! outputs, not just changed runtimes:
//!
//! * selector TTL 15 s vs 21600 s — how quickly a client population can be
//!   rerouted between CDNs (the paper's "quick reroutes" rationale);
//! * reactive overflow on/off — what happens to Apple's share when demand
//!   exceeds its capacity;
//! * off-net cache pools on/off — whether overflow via AS D exists at all;
//! * Akamai's wide answers (k=8) vs narrow (k=2) — how fast a probe fleet
//!   discovers a widened pool.

use criterion::{criterion_group, criterion_main, Criterion};
use mcdn_geo::{Duration, Region, SimTime};
use mcdn_scenario::params;
use metacdn::{CdnKind, CdnShare, MetaCdnState, Schedule};
use std::hint::black_box;
use std::net::Ipv4Addr;

/// Fraction of 1000 clients that change CDN within `window` seconds when
/// the schedule flips at t0, given a selector TTL.
fn reroute_fraction(selector_ttl: u64, window: u64) -> f64 {
    // Before: all-Apple. After: all-Limelight.
    let t0 = SimTime::from_ymd_hms(2017, 9, 19, 17, 0, 0);
    let mut schedule = Schedule::constant(CdnShare::apple_only());
    schedule.set_from(
        Region::Eu,
        t0,
        CdnShare { apple: 0.0, akamai: 0.0, limelight: 1.0, level3: 0.0 },
    );
    let state = MetaCdnState::new(schedule);
    let mut moved = 0u32;
    let n = 1000u32;
    for i in 0..n {
        let client = Ipv4Addr::from(0x0A00_0000 + i * 131);
        // The client last resolved just before the flip; it re-resolves
        // only when its cached selector CNAME expires.
        let last_resolved = t0 - Duration::secs((i as u64 * 7) % selector_ttl + 1);
        let next_resolution = last_resolved + Duration::secs(selector_ttl);
        if next_resolution <= t0 + Duration::secs(window) {
            if let Some(k) = state.select_cdn(Region::Eu, client, next_resolution) {
                if k == CdnKind::Limelight {
                    moved += 1;
                }
            }
        }
    }
    moved as f64 / n as f64
}

fn ablation_selector_ttl(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_selector_ttl");
    g.bench_function("ttl_15s_reroute_within_60s", |b| {
        b.iter(|| {
            let f = reroute_fraction(15, 60);
            assert!(f > 0.95, "15 s TTL reroutes nearly everyone in a minute: {f}");
            black_box(f)
        })
    });
    g.bench_function("ttl_21600s_reroute_within_60s", |b| {
        b.iter(|| {
            let f = reroute_fraction(21_600, 60);
            assert!(f < 0.05, "6 h TTL pins clients to the old CDN: {f}");
            black_box(f)
        })
    });
    g.finish();
}

fn ablation_reactive_overflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_reactive_overflow");
    let share = CdnShare { apple: 0.6, akamai: 0.2, limelight: 0.2, level3: 0.0 };
    let t = SimTime::from_ymd_hms(2017, 9, 19, 18, 0, 0);
    g.bench_function("overflow_enabled_apple_capped", |b| {
        b.iter(|| {
            let state = MetaCdnState::new(Schedule::constant(share));
            state.set_apple_utilization(Region::Eu, 3.0); // 3x over capacity
            let eff = state.effective_share(Region::Eu, t);
            let apple = eff.iter().find(|(k, _)| *k == CdnKind::Apple).unwrap().1;
            assert!(apple < 0.25, "spill must cap Apple: {apple}");
            black_box(eff)
        })
    });
    g.bench_function("overflow_absent_apple_uncapped", |b| {
        b.iter(|| {
            let state = MetaCdnState::new(Schedule::constant(share));
            // Ablated: the controller never learns about the overload.
            let eff = state.effective_share(Region::Eu, t);
            let apple = eff.iter().find(|(k, _)| *k == CdnKind::Apple).unwrap().1;
            assert!((apple - 0.6).abs() < 1e-9);
            black_box(eff)
        })
    });
    g.finish();
}

fn ablation_offnet_pools(c: &mut Criterion) {
    let (_, world) = mcdn_bench::micro_world();
    let mut g = c.benchmark_group("ablation_offnet_pools");
    g.bench_function("with_offnet_d_pool_exposed_under_load", |b| {
        b.iter(|| {
            let exposed = world.limelight.exposed(Region::Eu, 0.9);
            let d_ips = exposed
                .iter()
                .filter(|ip| world.topo.origin_of(**ip) == Some(params::LL_SURGE_D_AS))
                .count();
            assert!(d_ips > 0, "off-net D pool must engage under load");
            black_box(d_ips)
        })
    });
    g.bench_function("without_load_d_pool_absent", |b| {
        b.iter(|| {
            let exposed = world.limelight.exposed(Region::Eu, 0.05);
            let d_ips = exposed
                .iter()
                .filter(|ip| world.topo.origin_of(**ip) == Some(params::LL_SURGE_D_AS))
                .count();
            assert_eq!(d_ips, 0, "no overflow via AS D on quiet days");
            black_box(d_ips)
        })
    });
    g.finish();
}

fn ablation_answer_width(c: &mut Criterion) {
    let (_, world) = mcdn_bench::micro_world();
    let mut g = c.benchmark_group("ablation_answer_width");
    // How many draws does a fleet need to see 90% of a widened pool?
    let discover = |k: usize| -> usize {
        let pool = world.akamai.exposed(Region::Eu, 0.9);
        let target = pool.len() * 9 / 10;
        let mut seen = std::collections::HashSet::new();
        let mut draws = 0usize;
        let t0 = SimTime::from_ymd_hms(2017, 9, 19, 18, 0, 0);
        'outer: for round in 0..10_000u64 {
            let client = Ipv4Addr::from(0x0A00_0000 + (round as u32 % 400) * 97);
            let now = t0 + Duration::secs(round * 60);
            for ip in world.akamai.answer(Region::Eu, 0.9, client, now, k) {
                seen.insert(ip);
            }
            draws += 1;
            if seen.len() >= target {
                break 'outer;
            }
        }
        draws
    };
    g.sample_size(10);
    g.bench_function("wide_answers_k8_discovery", |b| {
        b.iter(|| {
            let d = discover(8);
            black_box(d)
        })
    });
    g.bench_function("narrow_answers_k2_discovery", |b| {
        b.iter(|| {
            let d8 = discover(8);
            let d2 = discover(2);
            assert!(d2 > d8, "narrow answers slow pool discovery: {d2} vs {d8}");
            black_box(d2)
        })
    });
    g.finish();
}

criterion_group!(
    ablation,
    ablation_selector_ttl,
    ablation_reactive_overflow,
    ablation_offnet_pools,
    ablation_answer_width,
);
criterion_main!(ablation);
