//! Shared setup for the benchmark harnesses.
//!
//! Each paper figure/table has a Criterion bench that regenerates it at a
//! micro scale (so `cargo bench` finishes in minutes); the `repro` binary
//! in `mcdn-analysis` produces the full-scale versions. The helpers here
//! centralize the micro-scale configuration so every bench exercises the
//! same world.

use mcdn_geo::{Duration, SimTime};
use mcdn_scenario::{ScenarioConfig, World};

/// A configuration small enough for statistical benching: a few dozen
/// probes, hour-level sampling, and a window around the release.
pub fn micro_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::fast();
    cfg.global_probes = 60;
    cfg.isp_probes = 40;
    cfg.global_dns_interval = Duration::hours(1);
    cfg.global_start = SimTime::from_ymd(2017, 9, 18);
    cfg.global_end = SimTime::from_ymd(2017, 9, 21);
    cfg.isp_start = SimTime::from_ymd(2017, 9, 16);
    cfg.isp_end = SimTime::from_ymd(2017, 9, 22);
    cfg.traffic_start = SimTime::from_ymd(2017, 9, 18);
    cfg.traffic_end = SimTime::from_ymd(2017, 9, 21);
    cfg.traffic_tick = Duration::hours(1);
    cfg.flows_per_cdn = 15;
    cfg
}

/// Builds the micro world once per harness.
pub fn micro_world() -> (ScenarioConfig, World) {
    let cfg = micro_cfg();
    let world = World::build(&cfg);
    (cfg, world)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_world_builds() {
        let (cfg, world) = micro_world();
        assert_eq!(world.global_probe_specs.len(), cfg.global_probes);
    }
}
