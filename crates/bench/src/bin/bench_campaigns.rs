//! The campaign-engine benchmark trajectory: runs the DNS campaigns and
//! the traffic simulation at several worker counts, checks the outputs
//! are bit-identical, and writes `BENCH_campaigns.json` with wall times,
//! resolution throughput, memo hit rates, and per-thread-count speedups.
//!
//! Usage: `bench_campaigns [--smoke] [OUT.json]`. `--smoke` shrinks the
//! workload for CI gating; the default output path is
//! `BENCH_campaigns.json` in the working directory.

use alloc_counter::CountingAlloc;
use mcdn_atlas::build_fleet;
use mcdn_dnssim::{CompiledNamespace, IRoundMemo, NoInternedFaults, ResolveScratch};
use mcdn_dnswire::RecordType;
use mcdn_faults::RetryPolicy;
use mcdn_geo::{Duration, SimTime};
use mcdn_scenario::classes::{attribute_interned, classify_ip_from_origin, AttributionTable};
use mcdn_scenario::{
    params, run_global_dns_resumable_with, run_global_dns_threads,
    run_global_dns_threads_observed, run_global_dns_threads_timed, run_isp_dns_threads_timed,
    run_isp_traffic_threads_timed, CampaignRun, ResumeOptions, ScenarioConfig, World,
    TRAFFIC_BATCH_TICKS,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Counts every heap allocation in the process so the steady-state
/// audit can assert the warm resolve loop performs none.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Distribution summary of the per-shard wall times of one run — what
/// the schema reports instead of the raw arrays (hundreds of floats of
/// scheduler noise that drowned the signal: where the shard-granularity
/// time actually goes).
struct WallSummary {
    count: usize,
    p50_ms: f64,
    p90_ms: f64,
    max_ms: f64,
}

/// Nearest-rank percentile index into a sorted sample of `len` values:
/// the smallest index whose rank covers `pct` percent of the sample,
/// `ceil(len * pct / 100) - 1` in integer arithmetic. The previous
/// `(len - 1) * pct / 100` floored instead, which at small counts picks
/// the wrong element — p90 of two samples must be the *larger* one.
fn nearest_rank(len: usize, pct: usize) -> usize {
    debug_assert!(len > 0 && (1..=100).contains(&pct));
    (len * pct).div_ceil(100) - 1
}

impl WallSummary {
    /// Nearest-rank percentiles over `walls` (milliseconds).
    fn of(walls: &[std::time::Duration]) -> WallSummary {
        let mut ms: Vec<f64> = walls.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
        let at = |pct: usize| {
            if ms.is_empty() {
                0.0
            } else {
                ms[nearest_rank(ms.len(), pct)]
            }
        };
        WallSummary {
            count: ms.len(),
            p50_ms: at(50),
            p90_ms: at(90),
            max_ms: ms.last().copied().unwrap_or(0.0),
        }
    }
}

/// Wall time and throughput of one benched (campaign, worker count)
/// cell: best-of-[`REPS`] wall clock, the shard-wall summary of the best
/// repetition, and the estimated pool-dispatch overhead the run paid.
struct Run {
    threads: usize,
    wall_ms: f64,
    per_sec: f64,
    walls: WallSummary,
    dispatch_overhead_ms: f64,
}

/// Repetitions per (campaign, worker count) cell; the best wall clock is
/// reported. Three is enough to shed one bad scheduler window without
/// tripling a CI run that executes every cell's output-identity check
/// anyway.
const REPS: usize = 3;

/// Per-dispatch cost of waking the pool at `threads` width: the measured
/// wall clock of a no-op `shard_map` over one item per shard, on a warm
/// pool. Multiplied by a run's dispatch count this estimates how much of
/// its wall went to orchestration rather than work — the quantity the
/// persistent pool exists to shrink.
fn dispatch_cost_ms(threads: usize) -> f64 {
    if threads <= 1 {
        return 0.0; // inline path: no handshake at all
    }
    mcdn_exec::warm(threads);
    let mut items = vec![0u8; threads];
    for _ in 0..64 {
        std::hint::black_box(mcdn_exec::shard_map(&mut items, threads, |_, _| ()));
    }
    let reps = 512u32;
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(mcdn_exec::shard_map(&mut items, threads, |_, _| ()));
    }
    start.elapsed().as_secs_f64() * 1e3 / f64::from(reps)
}

/// The same no-op dispatch measured through the retired spawn-per-round
/// engine (`mcdn_exec::reference`), kept in-tree as a differential
/// oracle. The pool-vs-scoped ratio is the one engine property a
/// single-core host can still measure without scheduler noise drowning
/// it (spawn costs tens of microseconds per worker; a warm-pool wake is
/// single-digit), so the degraded gate leans on it where raw speedup
/// cannot discriminate.
fn scoped_dispatch_cost_ms(threads: usize) -> f64 {
    if threads <= 1 {
        return 0.0;
    }
    let mut items = vec![0u8; threads];
    for _ in 0..16 {
        std::hint::black_box(mcdn_exec::reference::shard_map_scoped(&mut items, threads, |_, _| ()));
    }
    let reps = 128u32;
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(mcdn_exec::reference::shard_map_scoped(&mut items, threads, |_, _| ()));
    }
    start.elapsed().as_secs_f64() * 1e3 / f64::from(reps)
}

/// One benched campaign: canonical counters plus per-thread-count runs.
struct Bench {
    name: &'static str,
    units: &'static str,
    work: u64,
    memo_lookups: u64,
    memo_hits: u64,
    /// Resolutions answered by cross-round replay instead of the resolver
    /// (serial run; thread-count canonical). Zero for non-DNS campaigns.
    reused: u64,
    runs: Vec<Run>,
    identical: bool,
}

fn bench_cfg(smoke: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::fast();
    cfg.global_probes = if smoke { 40 } else { 150 };
    cfg.isp_probes = if smoke { 30 } else { 80 };
    cfg.global_dns_interval = if smoke { Duration::hours(2) } else { Duration::mins(30) };
    cfg.global_start = SimTime::from_ymd(2017, 9, 18);
    cfg.global_end = SimTime::from_ymd(2017, 9, if smoke { 20 } else { 21 });
    cfg.isp_start = SimTime::from_ymd(2017, 9, 16);
    cfg.isp_end = SimTime::from_ymd(2017, 9, 22);
    cfg.traffic_start = SimTime::from_ymd(2017, 9, 18);
    cfg.traffic_end = SimTime::from_ymd(2017, 9, if smoke { 19 } else { 21 });
    cfg.traffic_tick = if smoke { Duration::hours(1) } else { Duration::mins(30) };
    cfg
}

fn thread_counts() -> Vec<usize> {
    let native = mcdn_exec::thread_count();
    let mut counts = vec![1, 2, native.max(4)];
    counts.dedup();
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Times `run` at each worker count against a fresh world (best of
/// [`REPS`] repetitions per count), returning the per-count runs and
/// whether every output — of every repetition — matched the serial one.
fn bench_campaign<R, F>(
    cfg: &ScenarioConfig,
    counts: &[usize],
    run: F,
) -> (Vec<Run>, bool, Vec<R>)
where
    R: PartialEq,
    F: Fn(&World, &ScenarioConfig, usize) -> (u64, R, Vec<std::time::Duration>),
{
    let mut runs = Vec::new();
    let mut outputs: Vec<R> = Vec::new();
    for &threads in counts {
        let per_dispatch_ms = dispatch_cost_ms(threads);
        let mut best: Option<(f64, u64, Vec<std::time::Duration>)> = None;
        for _ in 0..REPS {
            // A fresh world per repetition: campaigns advance the
            // controller's load history, so sharing one would let an
            // earlier run warm state for a later one.
            let world = World::build(cfg);
            let start = Instant::now();
            let (work, out, shard_walls) = run(&world, cfg, threads);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            if best.as_ref().is_none_or(|(w, ..)| wall_ms < *w) {
                best = Some((wall_ms, work, shard_walls));
            }
            outputs.push(out);
        }
        let (wall_ms, work, shard_walls) = best.expect("REPS >= 1");
        // Shards per dispatch is the thread count (except a possible
        // smaller trailing batch); the executions-per-dispatch quotient
        // recovers the dispatch count well enough for an overhead
        // estimate.
        let dispatches = shard_walls.len().div_ceil(threads.max(1));
        runs.push(Run {
            threads,
            wall_ms,
            per_sec: if wall_ms > 0.0 { work as f64 / (wall_ms / 1e3) } else { 0.0 },
            walls: WallSummary::of(&shard_walls),
            dispatch_overhead_ms: per_dispatch_ms * dispatches as f64,
        });
    }
    let identical = outputs.windows(2).all(|w| w[0] == w[1]);
    (runs, identical, outputs)
}

/// Heap traffic of the warm (steady-state) resolve loop.
struct AllocAudit {
    resolutions: u64,
    allocs: u64,
    bytes: u64,
}

/// Measures heap allocations per steady-state resolution: one probe with a
/// warm cache resolving the entry chain at a fixed instant, including CNAME
/// attribution and flat-LPM origin classification — the exact per-probe work
/// of a campaign round after the first contact. The gate demands zero.
fn audit_steady_state(cfg: &ScenarioConfig) -> AllocAudit {
    let world = World::build(cfg);
    let cns = CompiledNamespace::compile(&world.ns);
    let attr = AttributionTable::build(cns.table());
    let rib = world.topo.compiled_rib();
    let retry = RetryPolicy::standard();
    let mut probe = build_fleet(world.global_probe_specs.clone())
        .into_iter()
        .next()
        .expect("world has at least one global probe");
    let t = cfg.global_start;
    let entry = metacdn::names::entry();
    let mut scratch = ResolveScratch::new();
    let entry_id = cns.intern_in(&mut scratch, &entry);
    let mut memo = IRoundMemo::new();
    // Two warm passes: the first fills the probe's cache at `t`, the second
    // lets every retained scratch buffer reach its steady capacity.
    for _ in 0..2 {
        let (result, _) = probe.measure_interned(
            &cns,
            &mut scratch,
            entry_id,
            RecordType::A,
            t,
            &NoInternedFaults,
            &retry,
            &mut memo,
        );
        assert!(result.is_ok(), "warm-up resolution failed");
        let _ = attribute_interned(scratch.trace(), &attr, &cns, &scratch);
    }
    let resolutions: u64 = 100_000;
    let mut classified = 0u64;
    let before = ALLOC.snapshot();
    for _ in 0..resolutions {
        let (result, _) = probe.measure_interned(
            &cns,
            &mut scratch,
            entry_id,
            RecordType::A,
            t,
            &NoInternedFaults,
            &retry,
            &mut memo,
        );
        assert!(result.is_ok());
        let attribution = attribute_interned(scratch.trace(), &attr, &cns, &scratch);
        for ip in scratch.trace().addresses() {
            let origin = rib.lookup(ip).map(|(_, asn)| asn);
            let class = classify_ip_from_origin(
                attribution,
                origin,
                params::AKAMAI_AS,
                params::LIMELIGHT_AS,
                params::APPLE_AS,
            );
            classified += u64::from(std::hint::black_box(class) == mcdn_scenario::CdnClass::Other);
        }
    }
    let delta = ALLOC.snapshot().since(before);
    std::hint::black_box(classified);
    AllocAudit { resolutions, allocs: delta.allocs, bytes: delta.bytes }
}

/// Wall-time cost of journaled checkpointing versus the plain engine.
struct CheckpointOverhead {
    plain_ms: f64,
    journaled_ms: f64,
    /// Signed best-of-N delta. A negative value means the journaled run's
    /// best repetition beat the plain run's — physically impossible as a
    /// real cost, so it is scheduler noise and is *flagged*, not gated.
    raw_overhead_pct: f64,
    /// The reported cost: `raw_overhead_pct` clamped at zero.
    overhead_pct: f64,
}

impl CheckpointOverhead {
    /// Whether the measurement hit the noise floor (journaled "faster"
    /// than plain).
    fn noise_floor(&self) -> bool {
        self.raw_overhead_pct < 0.0
    }
}

/// The checkpoint overhead budget: journaled campaigns may cost at most
/// this fraction of the plain engine's wall time.
const CHECKPOINT_OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Overhead measurements run interleaved best-of-N rounds of this many
/// repetitions; a round that lands under budget stops the measurement.
const OVERHEAD_REPS_PER_ROUND: usize = 9;

/// Ceiling on total overhead repetitions. Minimum statistics only move
/// downward as repetitions accumulate, so extending the measurement can
/// never hide a real cost — it only gives scheduler jitter more chances
/// to get out of the way. A measurement still over budget after this
/// many interleaved repetitions is a genuine regression.
const OVERHEAD_REPS_MAX: usize = 27;

/// Times the global campaign plain and journaled (cadence 1, i.e. every
/// round is checkpoint-eligible; the engine's overhead throttle decides
/// which become durable) at one worker, interleaved best-of-N (both
/// sides sample the same load windows) to damp scheduler noise, and
/// checks the journaled result is bit-identical.
///
/// Always runs the full-scale workload, even under `--smoke`: a percent
/// overhead measured on a ~10ms run is dominated by sub-millisecond
/// scheduler jitter, while at ~200ms the same jitter is <0.5%. On a
/// timeshared single core even best-of-9 occasionally leaves a few
/// percent of one-sided jitter, so when a round finishes over budget the
/// measurement extends itself (up to [`OVERHEAD_REPS_MAX`] repetitions)
/// before the gate is allowed to fail.
fn bench_checkpoint_overhead(cfg: &ScenarioConfig) -> CheckpointOverhead {
    let mut plain_ms = f64::INFINITY;
    let mut journaled_ms = f64::INFINITY;
    let mut plain_result = None;
    let mut journaled_result = None;
    let mut rep = 0;
    loop {
        for _ in 0..OVERHEAD_REPS_PER_ROUND {
            let world = World::build(cfg);
            let start = Instant::now();
            let r = run_global_dns_threads(&world, cfg, 1);
            plain_ms = plain_ms.min(start.elapsed().as_secs_f64() * 1e3);
            plain_result = Some(r);

            let path = std::env::temp_dir()
                .join(format!("mcdn-bench-journal-{}-{rep}.bin", std::process::id()));
            let _ = std::fs::remove_file(&path);
            let world = World::build(cfg);
            let opts = ResumeOptions { threads: 1, checkpoint_every: 1, stop_after_rounds: None };
            let start = Instant::now();
            let r = match run_global_dns_resumable_with(&world, cfg, &path, opts)
                .expect("journaled campaign")
            {
                CampaignRun::Complete(r) => r,
                CampaignRun::Suspended { .. } => unreachable!("no round budget given"),
            };
            journaled_ms = journaled_ms.min(start.elapsed().as_secs_f64() * 1e3);
            let _ = std::fs::remove_file(&path);
            journaled_result = Some(r);
            rep += 1;
        }
        let raw = (journaled_ms - plain_ms) / plain_ms * 100.0;
        if raw < CHECKPOINT_OVERHEAD_BUDGET_PCT || rep >= OVERHEAD_REPS_MAX {
            break;
        }
        eprintln!(
            "  checkpointing {raw:.2}% over budget after {rep} reps; extending measurement"
        );
    }
    assert_eq!(
        plain_result, journaled_result,
        "journaled campaign must be bit-identical to the plain engine"
    );
    let raw_overhead_pct =
        if plain_ms > 0.0 { (journaled_ms - plain_ms) / plain_ms * 100.0 } else { 0.0 };
    // Both sides are best-of-N over interleaved repetitions, so a negative
    // delta can only be residual scheduler noise; clamp the reported cost
    // at zero rather than publishing a nonsensical negative overhead.
    let overhead_pct = raw_overhead_pct.max(0.0);
    CheckpointOverhead { plain_ms, journaled_ms, raw_overhead_pct, overhead_pct }
}

/// Wall-time cost of the always-on observability layer: the serial global
/// campaign with metrics recording enabled versus runtime-disabled
/// ([`mcdn_obs::set_enabled`]). The registry is compiled in either way
/// (both arms run the same binary), so this measures exactly the hot-path
/// recording cost the `<2%` budget bounds.
struct ObsOverhead {
    enabled_ms: f64,
    disabled_ms: f64,
    /// Signed best-of-N delta; negative means scheduler noise (flagged,
    /// not gated), exactly like [`CheckpointOverhead`].
    raw_overhead_pct: f64,
    overhead_pct: f64,
}

impl ObsOverhead {
    fn noise_floor(&self) -> bool {
        self.raw_overhead_pct < 0.0
    }
}

/// The observability overhead budget: metrics recording may cost at most
/// this fraction of campaign wall time. Measured ~0% here (counter bumps
/// on thread-local cells, amortized over full resolutions), so the gate
/// mostly guards against someone adding an allocating or locking record
/// path later.
const OBS_OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// Times the serial global campaign with metrics enabled and disabled,
/// interleaved best-of-N (same damping — and the same
/// over-budget-extends-the-measurement rule — as
/// [`bench_checkpoint_overhead`], and like it always at full scale — a
/// percent budget needs a run long enough that scheduler jitter sits
/// well under it). Also returns the enabled run's snapshot, which the
/// JSON report embeds. Checks the campaign output is bit-identical with
/// recording on and off.
fn bench_obs_overhead(cfg: &ScenarioConfig) -> (ObsOverhead, mcdn_obs::MetricsSnapshot) {
    let mut enabled_ms = f64::INFINITY;
    let mut disabled_ms = f64::INFINITY;
    let mut snapshot = None;
    let mut enabled_result = None;
    let mut disabled_result = None;
    let mut rep = 0;
    loop {
        for _ in 0..OVERHEAD_REPS_PER_ROUND {
            mcdn_obs::set_enabled(true);
            let world = World::build(cfg);
            let start = Instant::now();
            let (r, snap) = run_global_dns_threads_observed(&world, cfg, 1);
            enabled_ms = enabled_ms.min(start.elapsed().as_secs_f64() * 1e3);
            snapshot = Some(snap);
            enabled_result = Some(r);

            mcdn_obs::set_enabled(false);
            let world = World::build(cfg);
            let start = Instant::now();
            let r = run_global_dns_threads(&world, cfg, 1);
            disabled_ms = disabled_ms.min(start.elapsed().as_secs_f64() * 1e3);
            mcdn_obs::set_enabled(true);
            disabled_result = Some(r);
            rep += 1;
        }
        let raw = (enabled_ms - disabled_ms) / disabled_ms * 100.0;
        if raw < OBS_OVERHEAD_BUDGET_PCT || rep >= OVERHEAD_REPS_MAX {
            break;
        }
        eprintln!(
            "  observability {raw:.2}% over budget after {rep} reps; extending measurement"
        );
    }
    assert_eq!(
        enabled_result, disabled_result,
        "metrics recording must never affect campaign output"
    );
    let raw_overhead_pct =
        if disabled_ms > 0.0 { (enabled_ms - disabled_ms) / disabled_ms * 100.0 } else { 0.0 };
    let overhead_pct = raw_overhead_pct.max(0.0);
    (
        ObsOverhead { enabled_ms, disabled_ms, raw_overhead_pct, overhead_pct },
        snapshot.expect("9 reps ran"),
    )
}

fn json_escape_free(s: &str) -> &str {
    // Every string we emit is a static identifier; keep the writer honest.
    assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || "_-./".contains(c)));
    s
}

/// The per-campaign speedup gate at the top benched thread count.
///
/// `full` is the real-parallelism bar, armed when the host machine can
/// actually run 4 workers at once; on narrower hosts (CI containers are
/// routinely pinned to one core, where a >1.0 speedup is physically
/// impossible) the gate degrades to `floor` — an overhead-amortization
/// bar that the retired spawn-per-round engine still fails but that
/// passes once dispatch cost is amortized.
///
/// Floor calibration, measured full-scale on a 1-core container: the
/// spawn-per-round engine ran 0.74×/0.85×/0.52× serial; the persistent
/// pool runs 0.75–0.81×/~0.95×/~1.05× across invocations. The residual
/// global_dns gap is not dispatch cost (`dispatch_overhead_ms` ≈ 0.1 ms
/// of a ~200 ms campaign) but duplicated per-shard memo misses — real
/// work that extra cores absorb and a single core serializes — and its
/// run-to-run jitter overlaps the old engine's number, so raw DNS
/// speedup cannot discriminate engines here. The floors therefore only
/// bound pathological overhead; engine discrimination in the floor
/// regime comes from (a) the isp_traffic bar (0.52× old vs ~1.05× pool,
/// far outside noise) and (b) the [`DISPATCH_RATIO_GATE`] head-to-head
/// microbenchmark, which is insensitive to core count. The JSON records
/// which bar was armed.
///
/// Recalibrated for schema v7: the observability layer's hot-path work
/// (dirty-mask brackets instead of full-array copies) sped the *serial*
/// run up (194→~230 k res/s on the reference container), which
/// lowers the parallel/serial ratio by the same fraction — the fixed
/// per-round shard overhead now divides a shorter round. Measured
/// 0.66–0.70× across invocations; the global_dns floor drops 0.70→0.62
/// to keep bounding pathological overhead without failing on a serial
/// speedup.
struct SpeedupGate {
    name: &'static str,
    full: f64,
    floor: f64,
}

/// Gate relaxation applied in `--smoke` mode: the smoke campaigns finish
/// in ~10 ms, where a timeshared core adds ±10% run-to-run jitter even
/// under best-of-[`REPS`], so CI enforces a proportionally looser bar.
/// The full-scale run (which produces the committed baseline) keeps the
/// calibrated thresholds.
const SMOKE_GATE_SCALE: f64 = 0.85;

const SPEEDUP_GATES: [SpeedupGate; 3] = [
    SpeedupGate { name: "global_dns", full: 1.2, floor: 0.62 },
    SpeedupGate { name: "isp_dns", full: 1.0, floor: 0.80 },
    SpeedupGate { name: "isp_traffic", full: 1.0, floor: 0.80 },
];

/// The committed schema-v5 baseline: serial full-scale global_dns
/// throughput (resolutions/second) before cross-round incremental
/// resolution existed. The reuse gate measures this build's serial run
/// against it.
const V5_SERIAL_GLOBAL_DNS_PER_SEC: f64 = 108_806.8;

/// The v5 baseline for the `--smoke` workload, measured by building the
/// v5 tree and running `bench_campaigns --smoke` on the same single-core
/// container that produced the committed full-scale baseline (best of
/// three invocations: 83.3k / 81.5k / 86.9k). The smoke campaign is a
/// different workload — 40 probes on a 2-hour cadence, so a far larger
/// cold-resolution fraction and fewer replayable rounds — which makes
/// its per-resolution throughput incomparable to the full-scale number;
/// it needs its own baseline, not a scaled copy.
const V5_SMOKE_SERIAL_GLOBAL_DNS_PER_SEC: f64 = 86_900.0;

/// The v5 serial baseline the current run is comparable against.
fn v5_serial_baseline(smoke: bool) -> f64 {
    if smoke {
        V5_SMOKE_SERIAL_GLOBAL_DNS_PER_SEC
    } else {
        V5_SERIAL_GLOBAL_DNS_PER_SEC
    }
}

/// The incremental-resolution bar on full-strength hosts: serial
/// global_dns must run at ≥2× the v5 baseline throughput with reuse
/// enabled (measured ~2.1× here — the zero-allocation hot path plus
/// version-vector replay of quiet steady-state rounds).
const REUSE_SPEEDUP_GATE_FULL: f64 = 2.0;

/// Calibrated floor on narrow hosts (`available_parallelism() < 4`,
/// typically one pinned, timeshared core): an absolute-throughput
/// comparison against a committed baseline inherits the host's
/// run-to-run variance on top of the engine's — the same build measured
/// 1.86×–2.13× across invocations on a single-core container — so the
/// bar degrades to one the reuse engine clears on its worst observed run
/// while a no-reuse build (~1.0× by construction) still cannot.
const REUSE_SPEEDUP_GATE_FLOOR: f64 = 1.4;

/// The reuse gate threshold for this host/mode.
///
/// The full-scale run carries the headline ≥2× claim (full-strength
/// hosts) or its single-core floor. The smoke run is a regression tripwire,
/// not a claim: its 2-hour cadence crosses the entry chain's 6-hour TTL
/// three times as often as the 30-minute full cadence, so its replayable
/// fraction is roughly half (2% vs 4.4% of resolutions) and its measured
/// ratio over the v5 smoke baseline sits at 1.34–1.62× where full scale
/// sits at 1.86–2.13×. Smoke therefore always gates at the floor times
/// [`SMOKE_GATE_SCALE`] (≈1.19×) — low enough that scheduler jitter
/// cannot trip it, high enough that losing the incremental engine (ratio
/// → ~1.0×) still fails CI.
fn reuse_gate_threshold(smoke: bool) -> f64 {
    if smoke {
        REUSE_SPEEDUP_GATE_FLOOR * SMOKE_GATE_SCALE
    } else if full_gate_armed() {
        REUSE_SPEEDUP_GATE_FULL
    } else {
        REUSE_SPEEDUP_GATE_FLOOR
    }
}

/// Worker widths this host can truly run concurrently.
fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Whether the full-strength speedup thresholds apply on this host.
fn full_gate_armed() -> bool {
    available_parallelism() >= 4
}

fn gate_threshold(gate: &SpeedupGate, smoke: bool) -> f64 {
    let bar = if full_gate_armed() { gate.full } else { gate.floor };
    if smoke {
        bar * SMOKE_GATE_SCALE
    } else {
        bar
    }
}

/// Head-to-head no-op dispatch cost at the top benched width: the
/// persistent pool versus the retired spawn-per-round reference engine.
struct DispatchMicrobench {
    threads: usize,
    pool_ms: f64,
    scoped_ms: f64,
}

impl DispatchMicrobench {
    /// How many times cheaper a warm-pool wake is than spawning scoped
    /// threads for the same geometry.
    fn scoped_over_pool(&self) -> f64 {
        if self.pool_ms > 0.0 {
            self.scoped_ms / self.pool_ms
        } else {
            f64::INFINITY
        }
    }
}

/// The dispatch-cost bar: a warm-pool dispatch must be at least this many
/// times cheaper than the scoped spawn it replaced. Unlike raw campaign
/// speedup, this ratio is insensitive to core count and scheduler jitter
/// (measured ~10–40× here), so it holds the tentpole's claim even on the
/// one-core hosts where the speedup gate degrades to its floors.
const DISPATCH_RATIO_GATE: f64 = 2.0;

#[allow(clippy::too_many_arguments)]
fn write_json(
    out: &mut String,
    smoke: bool,
    counts: &[usize],
    benches: &[Bench],
    audit: &AllocAudit,
    ckpt: &CheckpointOverhead,
    dispatch: &DispatchMicrobench,
    obs: &ObsOverhead,
    metrics: &mcdn_obs::MetricsSnapshot,
) {
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"mcdn-bench-campaigns-v7\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let counts_s: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    let _ = writeln!(out, "  \"thread_counts\": [{}],", counts_s.join(", "));
    let _ = writeln!(out, "  \"available_parallelism\": {},", available_parallelism());
    let _ = writeln!(out, "  \"traffic_batch_ticks\": {TRAFFIC_BATCH_TICKS},");
    let _ = writeln!(out, "  \"dispatch_microbench\": {{");
    let _ = writeln!(out, "    \"threads\": {},", dispatch.threads);
    let _ = writeln!(out, "    \"pool_ms\": {:.4},", dispatch.pool_ms);
    let _ = writeln!(out, "    \"scoped_ms\": {:.4},", dispatch.scoped_ms);
    let _ = writeln!(out, "    \"scoped_over_pool\": {:.2},", dispatch.scoped_over_pool());
    let _ = writeln!(out, "    \"gate_min_ratio\": {DISPATCH_RATIO_GATE:.2}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"speedup_gate\": {{");
    let _ = writeln!(out, "    \"full_strength\": {},", full_gate_armed());
    for (i, g) in SPEEDUP_GATES.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{}\": {:.2}{}",
            json_escape_free(g.name),
            gate_threshold(g, smoke),
            if i + 1 < SPEEDUP_GATES.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  }},");
    let serial_dns_per_sec = benches
        .iter()
        .find(|b| b.name == "global_dns")
        .and_then(|b| b.runs.first())
        .map(|r| r.per_sec)
        .unwrap_or(0.0);
    let _ = writeln!(out, "  \"reuse_gate\": {{");
    let _ = writeln!(out, "    \"v5_serial_resolutions_per_sec\": {:.1},", v5_serial_baseline(smoke));
    let _ = writeln!(out, "    \"serial_resolutions_per_sec\": {serial_dns_per_sec:.1},");
    let _ = writeln!(
        out,
        "    \"ratio_vs_v5\": {:.3},",
        serial_dns_per_sec / v5_serial_baseline(smoke)
    );
    let _ = writeln!(out, "    \"gate_min_ratio\": {:.2}", reuse_gate_threshold(smoke));
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"checkpointing\": {{");
    let _ = writeln!(out, "    \"plain_ms\": {:.3},", ckpt.plain_ms);
    let _ = writeln!(out, "    \"journaled_ms\": {:.3},", ckpt.journaled_ms);
    let _ = writeln!(out, "    \"checkpoint_overhead_pct\": {:.3},", ckpt.overhead_pct);
    let _ = writeln!(out, "    \"raw_overhead_pct\": {:.3},", ckpt.raw_overhead_pct);
    let _ = writeln!(out, "    \"noise_floor\": {}", ckpt.noise_floor());
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"observability\": {{");
    let _ = writeln!(out, "    \"enabled_ms\": {:.3},", obs.enabled_ms);
    let _ = writeln!(out, "    \"disabled_ms\": {:.3},", obs.disabled_ms);
    let _ = writeln!(out, "    \"obs_overhead_pct\": {:.3},", obs.overhead_pct);
    let _ = writeln!(out, "    \"raw_overhead_pct\": {:.3},", obs.raw_overhead_pct);
    let _ = writeln!(out, "    \"noise_floor\": {},", obs.noise_floor());
    let _ = writeln!(out, "    \"budget_pct\": {OBS_OVERHEAD_BUDGET_PCT:.1}");
    let _ = writeln!(out, "  }},");
    // The enabled serial run's counter registry, by self-describing name.
    // The first N_DET entries are deterministic (identical on any host or
    // worker count); the rest describe how this process computed them.
    let _ = writeln!(out, "  \"metrics\": {{");
    for (i, name) in mcdn_obs::COUNTER_NAMES.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{}\": {},",
            json_escape_free(name),
            metrics.counter(i as u16)
        );
    }
    let _ = writeln!(out, "    \"trace_events\": {}", metrics.events().len());
    let _ = writeln!(out, "  }},");
    let per = audit.resolutions.max(1) as f64;
    let _ = writeln!(out, "  \"steady_state\": {{");
    let _ = writeln!(out, "    \"resolutions\": {},", audit.resolutions);
    let _ = writeln!(out, "    \"allocs\": {},", audit.allocs);
    let _ = writeln!(out, "    \"bytes\": {},", audit.bytes);
    let _ = writeln!(
        out,
        "    \"allocs_per_resolution\": {:.4},",
        audit.allocs as f64 / per
    );
    let _ = writeln!(out, "    \"bytes_per_resolution\": {:.4}", audit.bytes as f64 / per);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"campaigns\": [");
    for (i, b) in benches.iter().enumerate() {
        let serial = b.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
        let hit_rate = if b.memo_lookups > 0 {
            b.memo_hits as f64 / b.memo_lookups as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape_free(b.name));
        let _ = writeln!(out, "      \"units\": \"{}\",", json_escape_free(b.units));
        let _ = writeln!(out, "      \"work\": {},", b.work);
        let _ = writeln!(out, "      \"memo_lookups\": {},", b.memo_lookups);
        let _ = writeln!(out, "      \"memo_hits\": {},", b.memo_hits);
        let _ = writeln!(out, "      \"memo_hit_rate\": {hit_rate:.4},");
        let reuse_rate = if b.work > 0 { b.reused as f64 / b.work as f64 } else { 0.0 };
        let _ = writeln!(out, "      \"reused_resolutions\": {},", b.reused);
        let _ = writeln!(out, "      \"reuse_rate\": {reuse_rate:.4},");
        let _ = writeln!(out, "      \"identical_across_threads\": {},", b.identical);
        let _ = writeln!(out, "      \"runs\": [");
        for (j, r) in b.runs.iter().enumerate() {
            let speedup = if r.wall_ms > 0.0 { serial / r.wall_ms } else { 0.0 };
            let _ = write!(
                out,
                "        {{\"threads\": {}, \"wall_ms\": {:.3}, \"{}_per_sec\": {:.1}, \"speedup_vs_serial\": {:.3}, \"dispatch_overhead_ms\": {:.3}, \"shard_walls\": {{\"count\": {}, \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"max_ms\": {:.3}}}}}",
                r.threads,
                r.wall_ms,
                json_escape_free(b.units),
                r.per_sec,
                speedup,
                r.dispatch_overhead_ms,
                r.walls.count,
                r.walls.p50_ms,
                r.walls.p90_ms,
                r.walls.max_ms,
            );
            let _ = writeln!(out, "{}", if j + 1 < b.runs.len() { "," } else { "" });
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if i + 1 < benches.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_campaigns.json".to_string());
    let cfg = bench_cfg(smoke);
    let counts = thread_counts();
    eprintln!("bench_campaigns: thread counts {counts:?}, smoke={smoke}");

    let mut benches = Vec::new();

    let (runs, identical, outs) = bench_campaign(&cfg, &counts, |world, cfg, threads| {
        let (r, walls) = run_global_dns_threads_timed(world, cfg, threads);
        (r.resolutions, r, walls)
    });
    let first = &outs[0];
    benches.push(Bench {
        name: "global_dns",
        units: "resolutions",
        work: first.resolutions,
        memo_lookups: first.memo_lookups,
        memo_hits: first.memo_hits,
        reused: first.reused_resolutions,
        runs,
        identical,
    });

    let (runs, identical, outs) = bench_campaign(&cfg, &counts, |world, cfg, threads| {
        let (r, walls) = run_isp_dns_threads_timed(world, cfg, threads);
        (r.resolutions, r, walls)
    });
    let first = &outs[0];
    benches.push(Bench {
        name: "isp_dns",
        units: "resolutions",
        work: first.resolutions,
        memo_lookups: first.memo_lookups,
        memo_hits: first.memo_hits,
        reused: first.reused_resolutions,
        runs,
        identical,
    });

    let (runs, identical, outs) = bench_campaign(&cfg, &counts, |world, cfg, threads| {
        let (r, walls) = run_isp_traffic_threads_timed(world, cfg, threads);
        (r.flows.len() as u64, r, walls)
    });
    let first = &outs[0];
    benches.push(Bench {
        name: "isp_traffic",
        units: "flows",
        work: first.flows.len() as u64,
        memo_lookups: 0,
        memo_hits: 0,
        reused: 0,
        runs,
        identical,
    });

    eprintln!("bench_campaigns: measuring checkpoint overhead");
    let ckpt = bench_checkpoint_overhead(&bench_cfg(false));
    eprintln!(
        "  checkpointing plain={:.1}ms journaled={:.1}ms overhead={:.2}%{}",
        ckpt.plain_ms,
        ckpt.journaled_ms,
        ckpt.overhead_pct,
        if ckpt.noise_floor() {
            format!(" (raw {:+.2}% — noise floor, clamped)", ckpt.raw_overhead_pct)
        } else {
            String::new()
        },
    );

    eprintln!("bench_campaigns: measuring observability overhead");
    let (obs, metrics) = bench_obs_overhead(&bench_cfg(false));
    eprintln!(
        "  observability enabled={:.1}ms disabled={:.1}ms overhead={:.2}% (budget < {:.1}%){}",
        obs.enabled_ms,
        obs.disabled_ms,
        obs.overhead_pct,
        OBS_OVERHEAD_BUDGET_PCT,
        if obs.noise_floor() {
            format!(" (raw {:+.2}% — noise floor, clamped)", obs.raw_overhead_pct)
        } else {
            String::new()
        },
    );

    eprintln!("bench_campaigns: auditing steady-state allocations");
    let audit = audit_steady_state(&cfg);
    eprintln!(
        "  steady_state resolutions={} allocs={} bytes={}",
        audit.resolutions, audit.allocs, audit.bytes
    );

    let all_identical = benches.iter().all(|b| b.identical);
    let top_threads = counts.iter().copied().max().unwrap_or(1);
    let dispatch = DispatchMicrobench {
        threads: top_threads,
        pool_ms: dispatch_cost_ms(top_threads),
        scoped_ms: scoped_dispatch_cost_ms(top_threads),
    };
    eprintln!(
        "  dispatch@{}t pool={:.4}ms scoped={:.4}ms ratio={:.1}x",
        dispatch.threads,
        dispatch.pool_ms,
        dispatch.scoped_ms,
        dispatch.scoped_over_pool(),
    );
    let mut json = String::new();
    write_json(&mut json, smoke, &counts, &benches, &audit, &ckpt, &dispatch, &obs, &metrics);
    std::fs::write(&out_path, &json).expect("write BENCH json");
    for b in &benches {
        let serial = b.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
        let best = b.runs.iter().skip(1).map(|r| r.wall_ms).fold(f64::INFINITY, f64::min);
        eprintln!(
            "  {:<12} work={:<7} serial={:.1}ms best-parallel={:.1}ms memo-hit-rate={:.2} reuse-rate={:.2} identical={}",
            b.name,
            b.work,
            serial,
            if best.is_finite() { best } else { serial },
            if b.memo_lookups > 0 { b.memo_hits as f64 / b.memo_lookups as f64 } else { 0.0 },
            if b.work > 0 { b.reused as f64 / b.work as f64 } else { 0.0 },
            b.identical,
        );
    }
    // Parallel-performance gate (was a WARN until the persistent pool
    // landed): the top benched thread count must clear its campaign's
    // speedup threshold — the real-parallelism bar on hosts with ≥4
    // cores, the overhead-amortization floor on narrower ones (where a
    // >1× speedup is physically impossible but the retired spawn-per-
    // round engine's 0.74× global / 0.52× traffic walls still fail).
    let mut gate_failed = false;
    for b in &benches {
        let serial = b.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
        let Some(top) = b.runs.last().filter(|r| r.threads > 1) else { continue };
        let speedup = if top.wall_ms > 0.0 { serial / top.wall_ms } else { 0.0 };
        let Some(gate) = SPEEDUP_GATES.iter().find(|g| g.name == b.name) else { continue };
        let threshold = gate_threshold(gate, smoke);
        if speedup < threshold {
            eprintln!(
                "bench_campaigns: FAIL — {} at {} threads ran {speedup:.3}x serial \
                 (gate ≥ {threshold:.2}x, {}; see shard_walls/dispatch_overhead_ms)",
                b.name,
                top.threads,
                if full_gate_armed() { "full-strength" } else { "overhead floor" },
            );
            gate_failed = true;
        }
    }
    // The incremental-resolution gate: serial global_dns with cross-round
    // reuse must clear the calibrated multiple of the committed v5
    // (pre-reuse) baseline throughput. Serial, so core *count* is
    // irrelevant; the floor covers per-core speed variance across hosts.
    {
        let serial_per_sec = benches
            .iter()
            .find(|b| b.name == "global_dns")
            .and_then(|b| b.runs.first())
            .map(|r| r.per_sec)
            .unwrap_or(0.0);
        let baseline = v5_serial_baseline(smoke);
        let ratio = serial_per_sec / baseline;
        let threshold = reuse_gate_threshold(smoke);
        eprintln!(
            "  reuse gate: serial global_dns {serial_per_sec:.0}/s = {ratio:.2}x v5 \
             baseline (gate ≥ {threshold:.2}x)"
        );
        if ratio < threshold {
            eprintln!(
                "bench_campaigns: FAIL — serial global_dns ran {ratio:.3}x the v5 \
                 baseline ({serial_per_sec:.0}/s vs {baseline:.0}/s, \
                 gate ≥ {threshold:.2}x, {})",
                if full_gate_armed() { "full-strength" } else { "single-core floor" },
            );
            gate_failed = true;
        }
    }
    // The hardware-independent half of the gate: the pool must beat the
    // retired spawn-per-round engine head-to-head on dispatch cost.
    if top_threads > 1 && dispatch.scoped_over_pool() < DISPATCH_RATIO_GATE {
        eprintln!(
            "bench_campaigns: FAIL — pool dispatch at {} threads is only {:.1}x cheaper \
             than scoped spawn (gate ≥ {DISPATCH_RATIO_GATE:.1}x)",
            top_threads,
            dispatch.scoped_over_pool(),
        );
        gate_failed = true;
    }
    eprintln!("bench_campaigns: wrote {out_path}");
    if gate_failed {
        std::process::exit(1);
    }
    if !all_identical {
        eprintln!("bench_campaigns: FAIL — outputs differ across thread counts");
        std::process::exit(1);
    }
    if audit.allocs != 0 {
        eprintln!(
            "bench_campaigns: FAIL — steady-state resolve loop allocated \
             ({} allocs / {} bytes over {} resolutions)",
            audit.allocs, audit.bytes, audit.resolutions
        );
        std::process::exit(1);
    }
    if ckpt.overhead_pct >= CHECKPOINT_OVERHEAD_BUDGET_PCT {
        eprintln!(
            "bench_campaigns: FAIL — per-round checkpointing costs {:.2}% \
             (budget < {CHECKPOINT_OVERHEAD_BUDGET_PCT:.0}%)",
            ckpt.overhead_pct
        );
        std::process::exit(1);
    }
    if obs.overhead_pct >= OBS_OVERHEAD_BUDGET_PCT {
        eprintln!(
            "bench_campaigns: FAIL — metrics recording costs {:.2}% \
             (budget < {OBS_OVERHEAD_BUDGET_PCT:.1}%)",
            obs.overhead_pct
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::{nearest_rank, WallSummary};
    use std::time::Duration;

    fn ms(v: &[u64]) -> Vec<Duration> {
        v.iter().map(|&m| Duration::from_millis(m)).collect()
    }

    #[test]
    fn one_shard_every_percentile_is_the_only_value() {
        let s = WallSummary::of(&ms(&[7]));
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_ms, 7.0);
        assert_eq!(s.p90_ms, 7.0);
        assert_eq!(s.max_ms, 7.0);
    }

    #[test]
    fn two_shards_split_the_ranks() {
        // Nearest-rank over two samples: p50 covers the lower half (the
        // smaller value), p90 needs 1.8 ranks and so must take the larger.
        let s = WallSummary::of(&ms(&[10, 30]));
        assert_eq!(s.count, 2);
        assert_eq!(s.p50_ms, 10.0);
        assert_eq!(s.p90_ms, 30.0);
        assert_eq!(s.max_ms, 30.0);
    }

    #[test]
    fn three_shards_median_and_tail_diverge() {
        let s = WallSummary::of(&ms(&[10, 20, 30]));
        assert_eq!(s.count, 3);
        assert_eq!(s.p50_ms, 20.0);
        assert_eq!(s.p90_ms, 30.0);
        assert_eq!(s.max_ms, 30.0);
    }

    #[test]
    fn summary_sorts_before_ranking() {
        let s = WallSummary::of(&ms(&[30, 10, 20]));
        assert_eq!(s.p50_ms, 20.0);
        assert_eq!(s.p90_ms, 30.0);
    }

    #[test]
    fn nearest_rank_is_ceiling_based() {
        assert_eq!(nearest_rank(1, 50), 0);
        assert_eq!(nearest_rank(1, 90), 0);
        assert_eq!(nearest_rank(2, 50), 0);
        assert_eq!(nearest_rank(2, 90), 1);
        assert_eq!(nearest_rank(3, 50), 1);
        assert_eq!(nearest_rank(3, 90), 2);
        assert_eq!(nearest_rank(10, 50), 4);
        assert_eq!(nearest_rank(10, 90), 8);
        assert_eq!(nearest_rank(100, 100), 99);
    }
}
