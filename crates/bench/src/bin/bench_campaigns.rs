//! The campaign-engine benchmark trajectory: runs the DNS campaigns and
//! the traffic simulation at several worker counts, checks the outputs
//! are bit-identical, and writes `BENCH_campaigns.json` with wall times,
//! resolution throughput, memo hit rates, and per-thread-count speedups.
//!
//! Usage: `bench_campaigns [--smoke] [OUT.json]`. `--smoke` shrinks the
//! workload for CI gating; the default output path is
//! `BENCH_campaigns.json` in the working directory.

use alloc_counter::CountingAlloc;
use mcdn_atlas::build_fleet;
use mcdn_dnssim::{CompiledNamespace, IRoundMemo, NoInternedFaults, ResolveScratch};
use mcdn_dnswire::RecordType;
use mcdn_faults::RetryPolicy;
use mcdn_geo::{Duration, SimTime};
use mcdn_scenario::classes::{attribute_interned, classify_ip_from_origin, AttributionTable};
use mcdn_scenario::{
    params, run_global_dns_resumable_with, run_global_dns_threads, run_global_dns_threads_timed,
    run_isp_dns_threads_timed, run_isp_traffic_threads, CampaignRun, ResumeOptions, ScenarioConfig,
    World,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Counts every heap allocation in the process so the steady-state
/// audit can assert the warm resolve loop performs none.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Wall time and throughput of one run at one worker count, plus the
/// wall time of every supervised shard (round-major, canonical shard
/// order) — the load-balance telemetry behind a disappointing speedup.
struct Run {
    threads: usize,
    wall_ms: f64,
    per_sec: f64,
    shard_wall_ms: Vec<f64>,
}

/// One benched campaign: canonical counters plus per-thread-count runs.
struct Bench {
    name: &'static str,
    units: &'static str,
    work: u64,
    memo_lookups: u64,
    memo_hits: u64,
    runs: Vec<Run>,
    identical: bool,
}

fn bench_cfg(smoke: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::fast();
    cfg.global_probes = if smoke { 40 } else { 150 };
    cfg.isp_probes = if smoke { 30 } else { 80 };
    cfg.global_dns_interval = if smoke { Duration::hours(2) } else { Duration::mins(30) };
    cfg.global_start = SimTime::from_ymd(2017, 9, 18);
    cfg.global_end = SimTime::from_ymd(2017, 9, if smoke { 20 } else { 21 });
    cfg.isp_start = SimTime::from_ymd(2017, 9, 16);
    cfg.isp_end = SimTime::from_ymd(2017, 9, 22);
    cfg.traffic_start = SimTime::from_ymd(2017, 9, 18);
    cfg.traffic_end = SimTime::from_ymd(2017, 9, if smoke { 19 } else { 21 });
    cfg.traffic_tick = if smoke { Duration::hours(1) } else { Duration::mins(30) };
    cfg
}

fn thread_counts() -> Vec<usize> {
    let native = mcdn_exec::thread_count();
    let mut counts = vec![1, 2, native.max(4)];
    counts.dedup();
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Times `run` at each worker count against a fresh world, returning the
/// per-count wall clocks and whether every output matched the serial one.
fn bench_campaign<R, F>(
    cfg: &ScenarioConfig,
    counts: &[usize],
    run: F,
) -> (Vec<Run>, bool, Vec<R>)
where
    R: PartialEq,
    F: Fn(&World, &ScenarioConfig, usize) -> (u64, R, Vec<std::time::Duration>),
{
    let mut runs = Vec::new();
    let mut outputs: Vec<R> = Vec::new();
    for &threads in counts {
        // A fresh world per run: campaigns advance the controller's load
        // history, so sharing one would let an earlier run warm state for
        // a later one.
        let world = World::build(cfg);
        let start = Instant::now();
        let (work, out, shard_walls) = run(&world, cfg, threads);
        let wall = start.elapsed();
        let wall_ms = wall.as_secs_f64() * 1e3;
        runs.push(Run {
            threads,
            wall_ms,
            per_sec: if wall_ms > 0.0 { work as f64 / (wall_ms / 1e3) } else { 0.0 },
            shard_wall_ms: shard_walls.iter().map(|d| d.as_secs_f64() * 1e3).collect(),
        });
        outputs.push(out);
    }
    let identical = outputs.windows(2).all(|w| w[0] == w[1]);
    (runs, identical, outputs)
}

/// Heap traffic of the warm (steady-state) resolve loop.
struct AllocAudit {
    resolutions: u64,
    allocs: u64,
    bytes: u64,
}

/// Measures heap allocations per steady-state resolution: one probe with a
/// warm cache resolving the entry chain at a fixed instant, including CNAME
/// attribution and flat-LPM origin classification — the exact per-probe work
/// of a campaign round after the first contact. The gate demands zero.
fn audit_steady_state(cfg: &ScenarioConfig) -> AllocAudit {
    let world = World::build(cfg);
    let cns = CompiledNamespace::compile(&world.ns);
    let attr = AttributionTable::build(cns.table());
    let rib = world.topo.compiled_rib();
    let retry = RetryPolicy::standard();
    let mut probe = build_fleet(world.global_probe_specs.clone())
        .into_iter()
        .next()
        .expect("world has at least one global probe");
    let t = cfg.global_start;
    let entry = metacdn::names::entry();
    let mut scratch = ResolveScratch::new();
    let entry_id = cns.intern_in(&mut scratch, &entry);
    let mut memo = IRoundMemo::new();
    // Two warm passes: the first fills the probe's cache at `t`, the second
    // lets every retained scratch buffer reach its steady capacity.
    for _ in 0..2 {
        let (result, _) = probe.measure_interned(
            &cns,
            &mut scratch,
            entry_id,
            RecordType::A,
            t,
            &NoInternedFaults,
            &retry,
            &mut memo,
        );
        assert!(result.is_ok(), "warm-up resolution failed");
        let _ = attribute_interned(scratch.trace(), &attr, &cns, &scratch);
    }
    let resolutions: u64 = 100_000;
    let mut classified = 0u64;
    let before = ALLOC.snapshot();
    for _ in 0..resolutions {
        let (result, _) = probe.measure_interned(
            &cns,
            &mut scratch,
            entry_id,
            RecordType::A,
            t,
            &NoInternedFaults,
            &retry,
            &mut memo,
        );
        assert!(result.is_ok());
        let attribution = attribute_interned(scratch.trace(), &attr, &cns, &scratch);
        for ip in scratch.trace().addresses() {
            let origin = rib.lookup(ip).map(|(_, asn)| asn);
            let class = classify_ip_from_origin(
                attribution,
                origin,
                params::AKAMAI_AS,
                params::LIMELIGHT_AS,
                params::APPLE_AS,
            );
            classified += u64::from(std::hint::black_box(class) == mcdn_scenario::CdnClass::Other);
        }
    }
    let delta = ALLOC.snapshot().since(before);
    std::hint::black_box(classified);
    AllocAudit { resolutions, allocs: delta.allocs, bytes: delta.bytes }
}

/// Wall-time cost of journaled checkpointing versus the plain engine.
struct CheckpointOverhead {
    plain_ms: f64,
    journaled_ms: f64,
    overhead_pct: f64,
}

/// Times the global campaign plain and journaled (cadence 1, i.e. every
/// round is checkpoint-eligible; the engine's overhead throttle decides
/// which become durable) at one worker, best-of-9 each (interleaved, so
/// both sides sample the same load windows) to damp scheduler noise, and
/// checks the journaled result is bit-identical.
///
/// Always runs the full-scale workload, even under `--smoke`: a percent
/// overhead measured on a ~10ms run is dominated by sub-millisecond
/// scheduler jitter, while at ~200ms the same jitter is <0.5%.
fn bench_checkpoint_overhead(cfg: &ScenarioConfig) -> CheckpointOverhead {
    let mut plain_ms = f64::INFINITY;
    let mut journaled_ms = f64::INFINITY;
    let mut plain_result = None;
    let mut journaled_result = None;
    for rep in 0..9 {
        let world = World::build(cfg);
        let start = Instant::now();
        let r = run_global_dns_threads(&world, cfg, 1);
        plain_ms = plain_ms.min(start.elapsed().as_secs_f64() * 1e3);
        plain_result = Some(r);

        let path = std::env::temp_dir()
            .join(format!("mcdn-bench-journal-{}-{rep}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let world = World::build(cfg);
        let opts = ResumeOptions { threads: 1, checkpoint_every: 1, stop_after_rounds: None };
        let start = Instant::now();
        let r = match run_global_dns_resumable_with(&world, cfg, &path, opts)
            .expect("journaled campaign")
        {
            CampaignRun::Complete(r) => r,
            CampaignRun::Suspended { .. } => unreachable!("no round budget given"),
        };
        journaled_ms = journaled_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let _ = std::fs::remove_file(&path);
        journaled_result = Some(r);
    }
    assert_eq!(
        plain_result, journaled_result,
        "journaled campaign must be bit-identical to the plain engine"
    );
    let overhead_pct =
        if plain_ms > 0.0 { (journaled_ms - plain_ms) / plain_ms * 100.0 } else { 0.0 };
    CheckpointOverhead { plain_ms, journaled_ms, overhead_pct }
}

fn json_escape_free(s: &str) -> &str {
    // Every string we emit is a static identifier; keep the writer honest.
    assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || "_-./".contains(c)));
    s
}

fn write_json(
    out: &mut String,
    smoke: bool,
    counts: &[usize],
    benches: &[Bench],
    audit: &AllocAudit,
    ckpt: &CheckpointOverhead,
) {
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"mcdn-bench-campaigns-v4\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let counts_s: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    let _ = writeln!(out, "  \"thread_counts\": [{}],", counts_s.join(", "));
    let _ = writeln!(out, "  \"checkpointing\": {{");
    let _ = writeln!(out, "    \"plain_ms\": {:.3},", ckpt.plain_ms);
    let _ = writeln!(out, "    \"journaled_ms\": {:.3},", ckpt.journaled_ms);
    let _ = writeln!(out, "    \"checkpoint_overhead_pct\": {:.3}", ckpt.overhead_pct);
    let _ = writeln!(out, "  }},");
    let per = audit.resolutions.max(1) as f64;
    let _ = writeln!(out, "  \"steady_state\": {{");
    let _ = writeln!(out, "    \"resolutions\": {},", audit.resolutions);
    let _ = writeln!(out, "    \"allocs\": {},", audit.allocs);
    let _ = writeln!(out, "    \"bytes\": {},", audit.bytes);
    let _ = writeln!(
        out,
        "    \"allocs_per_resolution\": {:.4},",
        audit.allocs as f64 / per
    );
    let _ = writeln!(out, "    \"bytes_per_resolution\": {:.4}", audit.bytes as f64 / per);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"campaigns\": [");
    for (i, b) in benches.iter().enumerate() {
        let serial = b.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
        let hit_rate = if b.memo_lookups > 0 {
            b.memo_hits as f64 / b.memo_lookups as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape_free(b.name));
        let _ = writeln!(out, "      \"units\": \"{}\",", json_escape_free(b.units));
        let _ = writeln!(out, "      \"work\": {},", b.work);
        let _ = writeln!(out, "      \"memo_lookups\": {},", b.memo_lookups);
        let _ = writeln!(out, "      \"memo_hits\": {},", b.memo_hits);
        let _ = writeln!(out, "      \"memo_hit_rate\": {hit_rate:.4},");
        let _ = writeln!(out, "      \"identical_across_threads\": {},", b.identical);
        let _ = writeln!(out, "      \"runs\": [");
        for (j, r) in b.runs.iter().enumerate() {
            let speedup = if r.wall_ms > 0.0 { serial / r.wall_ms } else { 0.0 };
            let walls: Vec<String> = r.shard_wall_ms.iter().map(|w| format!("{w:.3}")).collect();
            let _ = write!(
                out,
                "        {{\"threads\": {}, \"wall_ms\": {:.3}, \"{}_per_sec\": {:.1}, \"speedup_vs_serial\": {:.3}, \"shard_wall_ms\": [{}]}}",
                r.threads,
                r.wall_ms,
                json_escape_free(b.units),
                r.per_sec,
                speedup,
                walls.join(", "),
            );
            let _ = writeln!(out, "{}", if j + 1 < b.runs.len() { "," } else { "" });
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if i + 1 < benches.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_campaigns.json".to_string());
    let cfg = bench_cfg(smoke);
    let counts = thread_counts();
    eprintln!("bench_campaigns: thread counts {counts:?}, smoke={smoke}");

    let mut benches = Vec::new();

    let (runs, identical, outs) = bench_campaign(&cfg, &counts, |world, cfg, threads| {
        let (r, walls) = run_global_dns_threads_timed(world, cfg, threads);
        (r.resolutions, r, walls)
    });
    let first = &outs[0];
    benches.push(Bench {
        name: "global_dns",
        units: "resolutions",
        work: first.resolutions,
        memo_lookups: first.memo_lookups,
        memo_hits: first.memo_hits,
        runs,
        identical,
    });

    let (runs, identical, outs) = bench_campaign(&cfg, &counts, |world, cfg, threads| {
        let (r, walls) = run_isp_dns_threads_timed(world, cfg, threads);
        (r.resolutions, r, walls)
    });
    let first = &outs[0];
    benches.push(Bench {
        name: "isp_dns",
        units: "resolutions",
        work: first.resolutions,
        memo_lookups: first.memo_lookups,
        memo_hits: first.memo_hits,
        runs,
        identical,
    });

    let (runs, identical, outs) = bench_campaign(&cfg, &counts, |world, cfg, threads| {
        let r = run_isp_traffic_threads(world, cfg, threads);
        // The traffic engine exposes no shard timing; walls stay empty.
        (r.flows.len() as u64, r, Vec::new())
    });
    let first = &outs[0];
    benches.push(Bench {
        name: "isp_traffic",
        units: "flows",
        work: first.flows.len() as u64,
        memo_lookups: 0,
        memo_hits: 0,
        runs,
        identical,
    });

    eprintln!("bench_campaigns: measuring checkpoint overhead");
    let ckpt = bench_checkpoint_overhead(&bench_cfg(false));
    eprintln!(
        "  checkpointing plain={:.1}ms journaled={:.1}ms overhead={:+.2}%",
        ckpt.plain_ms, ckpt.journaled_ms, ckpt.overhead_pct
    );

    eprintln!("bench_campaigns: auditing steady-state allocations");
    let audit = audit_steady_state(&cfg);
    eprintln!(
        "  steady_state resolutions={} allocs={} bytes={}",
        audit.resolutions, audit.allocs, audit.bytes
    );

    let all_identical = benches.iter().all(|b| b.identical);
    let mut json = String::new();
    write_json(&mut json, smoke, &counts, &benches, &audit, &ckpt);
    std::fs::write(&out_path, &json).expect("write BENCH json");
    for b in &benches {
        let serial = b.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
        let best = b.runs.iter().skip(1).map(|r| r.wall_ms).fold(f64::INFINITY, f64::min);
        eprintln!(
            "  {:<12} work={:<7} serial={:.1}ms best-parallel={:.1}ms memo-hit-rate={:.2} identical={}",
            b.name,
            b.work,
            serial,
            if best.is_finite() { best } else { serial },
            if b.memo_lookups > 0 { b.memo_hits as f64 / b.memo_lookups as f64 } else { 0.0 },
            b.identical,
        );
    }
    // Parallel-regression watch: a warning, deliberately not a gate —
    // shared CI runners make multi-thread wall clocks too noisy to fail
    // on, but a sub-serial run should never pass silently.
    for b in &benches {
        let serial = b.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
        for r in b.runs.iter().skip(1) {
            let speedup = if r.wall_ms > 0.0 { serial / r.wall_ms } else { 0.0 };
            if speedup < 1.0 {
                eprintln!(
                    "bench_campaigns: WARN — {} at {} threads ran {speedup:.3}x serial \
                     (parallel regression; see shard_wall_ms for the imbalance)",
                    b.name, r.threads
                );
            }
        }
    }
    eprintln!("bench_campaigns: wrote {out_path}");
    if !all_identical {
        eprintln!("bench_campaigns: FAIL — outputs differ across thread counts");
        std::process::exit(1);
    }
    if audit.allocs != 0 {
        eprintln!(
            "bench_campaigns: FAIL — steady-state resolve loop allocated \
             ({} allocs / {} bytes over {} resolutions)",
            audit.allocs, audit.bytes, audit.resolutions
        );
        std::process::exit(1);
    }
    if ckpt.overhead_pct >= 5.0 {
        eprintln!(
            "bench_campaigns: FAIL — per-round checkpointing costs {:.2}% \
             (budget < 5%)",
            ckpt.overhead_pct
        );
        std::process::exit(1);
    }
}
