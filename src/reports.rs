//! Renderers behind the repository examples.
//!
//! Each function builds a world, runs the example's workload, and returns
//! the full report as one string. The examples print it verbatim; the
//! golden-snapshot suite (`tests/golden_examples.rs`) compares it against
//! a tracked fixture, so any drift in the user-facing walkthroughs is a
//! test failure instead of a silent regression. Everything rendered here
//! is deterministic — including the metrics excerpt, which only shows
//! deterministic-class counters (identical for any worker count).

use std::fmt::Write as _;

use crate::build_world_or_exit;
use crate::core::names;
use crate::dnssim::{QueryContext, RecursiveResolver};
use crate::dnswire::RecordType;
use crate::geo::{Continent, Duration, Locode, Region, Registry, SimTime};
use crate::scenario::{loads, params, run_global_dns_observed, CdnClass, ScenarioConfig};

/// The quickstart walkthrough: resolve the update entry point as a Berlin
/// client, show the CNAME chain, the answer set, cache behavior on
/// re-resolution, and the controller's view of the instant.
pub fn quickstart_report() -> String {
    let mut out = String::new();
    // The calibrated iOS-11 world: topology, CDNs, mapping zones, probes.
    let world = build_world_or_exit(&ScenarioConfig::fast());

    // A client in Berlin, two days before the release.
    let berlin = Registry::by_locode(Locode::parse("deber").unwrap()).unwrap();
    let now = SimTime::from_ymd_hms(2017, 9, 17, 19, 0, 0);
    loads::update_loads(&world, now); // publish controller inputs for `now`
    let ctx = QueryContext {
        client_ip: "84.17.10.23".parse().unwrap(),
        locode: berlin.locode,
        coord: berlin.coord,
        continent: berlin.continent,
        now,
    };

    // Resolve appldnld.apple.com through the full mapping chain.
    let mut resolver = RecursiveResolver::new();
    let (trace, result) = resolver.resolve(&world.ns, &names::entry(), RecordType::A, &ctx);
    result.expect("the entry point always resolves");

    let _ = writeln!(out, "CNAME chain for {} (client: Berlin, {now}):", names::entry());
    for (from, to, ttl) in trace.cname_edges() {
        let _ = writeln!(out, "  {from} --{ttl:>5}s--> {to}");
    }
    let _ = writeln!(out, "answer:");
    for ip in trace.addresses() {
        let origin = world.topo.origin_of(ip).expect("announced address");
        let who = world.topo.as_info(origin).map(|a| a.name.as_str()).unwrap_or("?");
        let ptr = world
            .apple
            .ptr_lookup(ip)
            .map(|n| n.fqdn())
            .unwrap_or_else(|| "(no rDNS)".into());
        let _ = writeln!(out, "  {ip}  [{who}]  {ptr}");
    }

    // Re-resolve 30 seconds later: the 15-second selector TTL has lapsed, so
    // the Meta-CDN may hand this client to a different CDN.
    let mut later = ctx;
    later.now = now + Duration::secs(30);
    let (trace2, _) = resolver.resolve(&world.ns, &names::entry(), RecordType::A, &later);
    let cached = trace2.steps.iter().filter(|s| s.from_cache).count();
    let _ = writeln!(
        out,
        "\nre-resolution 30 s later: {} of {} chain steps served from cache \
(the 21600 s entry CNAME is pinned; the 15 s selector re-decides)",
        cached,
        trace2.steps.len()
    );

    // What the controller knows at this instant.
    let _ = writeln!(out, "\ncontroller snapshot: {:#?}", world.state.snapshot(now));
    let _ = writeln!(
        out,
        "\nApple EU capacity: {:.1} Tbps across {} edge-bx servers at {} sites; \
release instant: {}",
        world.apple_capacity_bps(Region::Eu) / 1e12,
        world.apple.total_bx(),
        world.apple.sites().len(),
        params::release()
    );
    out
}

/// The rollout walkthrough: a compact global DNS campaign around the iOS
/// 11 release — the European unique-IP spike, the CDN selection shift,
/// and the campaign's deterministic metrics.
pub fn ios_update_rollout_report() -> String {
    let mut out = String::new();
    let mut cfg = ScenarioConfig::fast();
    cfg.global_probes = 300;
    cfg.global_dns_interval = Duration::mins(10);
    cfg.global_start = SimTime::from_ymd(2017, 9, 18);
    cfg.global_end = SimTime::from_ymd(2017, 9, 21);
    let world = build_world_or_exit(&cfg);
    let release = params::release();

    let _ = writeln!(
        out,
        "running {} probes every {} min, {} → {} (release: {release})\n",
        cfg.global_probes,
        cfg.global_dns_interval.as_secs() / 60,
        cfg.global_start,
        cfg.global_end
    );
    let (result, metrics) = run_global_dns_observed(&world, &cfg);
    let _ = writeln!(out, "{} resolutions performed\n", result.resolutions);

    // Hourly EU unique-IP series, paper-figure style.
    let _ = writeln!(
        out,
        "Europe, unique cache IPs per hour (A=Apple K=Akamai K*=other-AS L=Limelight L*=other-AS):"
    );
    let mut t = cfg.global_start;
    while t < cfg.global_end {
        let count = |c: CdnClass| result.unique_ips.count(t, Continent::Europe, c);
        let total: usize = CdnClass::ALL.iter().map(|c| count(*c)).sum();
        let marker =
            if t <= release && release < t + Duration::hours(1) { "  <-- iOS 11.0" } else { "" };
        let _ = writeln!(
            out,
            "  {t}  A:{:>3} K:{:>3} K*:{:>3} L:{:>3} L*:{:>3}  total {:>4} {}{marker}",
            count(CdnClass::Apple),
            count(CdnClass::Akamai),
            count(CdnClass::AkamaiOtherAs),
            count(CdnClass::Limelight),
            count(CdnClass::LimelightOtherAs),
            total,
            "#".repeat(total / 25),
        );
        t += Duration::hours(3);
    }

    // How the effective CDN selection shifted at the release instant.
    let _ = writeln!(out, "\neffective EU selection shares (schedule + reactive overflow):");
    for (label, at) in [
        ("2 days before", release - Duration::days(2)),
        ("release + 1 h", release + Duration::hours(1)),
        ("release + 1 day", release + Duration::days(1)),
    ] {
        loads::update_loads(&world, at);
        let eff = world.state.effective_share(Region::Eu, at);
        let fmt: Vec<String> = eff.iter().map(|(k, p)| format!("{k} {:.0}%", p * 100.0)).collect();
        let _ = writeln!(
            out,
            "  {label:<16} {}   (Apple util {:.2}, a1015 {})",
            fmt.join(", "),
            world.state.apple_utilization(Region::Eu),
            if world.state.a1015_active(Region::Eu, at) { "ACTIVE" } else { "off" }
        );
    }

    // What the observability layer counted — the deterministic registry
    // only, so this report is identical on any machine and thread count.
    let _ = writeln!(out, "\ncampaign metrics (deterministic counters, nonzero):");
    for (name, value) in mcdn_obs::COUNTER_NAMES
        .iter()
        .take(mcdn_obs::N_DET)
        .enumerate()
        .map(|(i, name)| (name, metrics.counter(i as u16)))
        .filter(|&(_, v)| v > 0)
    {
        let _ = writeln!(out, "  {name:<28} {value}");
    }
    out
}
