//! `metacdn-suite` — umbrella crate over the Meta-CDN reproduction
//! workspace.
//!
//! Re-exports every workspace crate under a stable prefix so examples and
//! integration tests can address the whole system through one dependency:
//!
//! ```
//! use metacdn_suite::scenario::{ScenarioConfig, World};
//! let world = World::build(&ScenarioConfig::fast());
//! assert_eq!(world.vms.len(), 9);
//! ```
//!
//! See the repository `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module map.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use mcdn_analysis as analysis;
pub use mcdn_journal as journal;
pub use mcdn_atlas as atlas;
pub use mcdn_cdn as cdn;
pub use mcdn_dnssim as dnssim;
pub use mcdn_exec as exec;
pub use mcdn_faults as faults;
pub use mcdn_dnswire as dnswire;
pub use mcdn_geo as geo;
pub use mcdn_isp as isp;
pub use mcdn_netsim as netsim;
pub use mcdn_obs as obs;
pub use mcdn_scenario as scenario;
pub use mcdn_workload as workload;
pub use metacdn as core;

pub mod reports;

/// Builds the scenario world for `cfg`, reporting a configuration error on
/// stderr and exiting nonzero instead of panicking — the polite front door
/// for examples and other end-user binaries.
pub fn build_world_or_exit(cfg: &scenario::ScenarioConfig) -> scenario::World {
    match scenario::World::try_build(cfg) {
        Ok(world) => world,
        Err(e) => {
            eprintln!("error: cannot build the scenario world: {e}");
            std::process::exit(1);
        }
    }
}
